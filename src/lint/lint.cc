#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "lint/scope.h"
#include "lint/token.h"

namespace dmr::lint {

namespace {

/// A source file after the v2 front end: one lexer pass yields the token
/// stream and the two blanked line views (lint/token.h), the scope tracker
/// classifies every brace pair and collects DMR_SHARD_AFFINE symbols
/// (lint/scope.h), and the suppression collector resolves each
/// `dmr-lint: allow()` comment to the statement it covers.
struct FileText {
  TokenizedFile tok;
  ScopeTree scopes;
  /// line (1-based) -> check ids allowed there, with justification text.
  std::map<int, std::map<std::string, std::string>> allows;
  /// Lines whose allow() comment carries no justification: rejected, and
  /// reported as `lint-allow` errors.
  std::vector<int> empty_allows;
};

bool IsPunctTok(const Tok& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsAnnotationIdent(const Tok& t) {
  return t.kind == TokKind::kIdent &&
         (t.text == "DMR_CROSS_SHARD_OK" || t.text == "DMR_BARRIER_PHASE" ||
          t.text == "DMR_SHARD_AFFINE");
}

/// First significant token whose extent covers `line` (1-based); -1 when
/// the line holds no code.
int FirstSigOnLine(const TokenizedFile& f, int line) {
  for (int k = 0; k < static_cast<int>(f.tokens.size()); ++k) {
    const Tok& t = f.tokens[k];
    if (!IsSig(t)) continue;
    if (t.line <= line && line <= t.end_line) return k;
    if (t.line > line) break;
  }
  return -1;
}

/// The significant identifier token starting at (line, col); -1 if none.
int TokenAt(const TokenizedFile& f, int line, int col) {
  for (int k = 0; k < static_cast<int>(f.tokens.size()); ++k) {
    const Tok& t = f.tokens[k];
    if (t.line == line && t.col == col && IsSig(t)) return k;
    if (t.line > line) break;
  }
  return -1;
}

bool JustificationIsEmpty(const std::string& j) {
  // A block-comment allow's trailing `*/` is comment syntax, not text.
  std::string s = j;
  if (size_t star = s.rfind("*/"); star != std::string::npos) {
    s = s.substr(0, star);
  }
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

/// Parses `// dmr-lint: allow(check-a, check-b) justification` comments
/// from the token stream. An allow covers the statement it is attached
/// to — the statement containing its line for the trailing form, the
/// whole following statement (through an attached brace block) for the
/// line-above form — so a suppression keeps working when the flagged
/// expression wraps onto the next line. An allow without a justification
/// is rejected and recorded for the `lint-allow` report.
void CollectAllows(FileText* text) {
  static const std::regex kAllow(
      R"(dmr-lint:\s*allow\(\s*([A-Za-z0-9_,\- ]+?)\s*\)\s*(.*)$)");
  const TokenizedFile& f = text->tok;
  for (int ti = 0; ti < static_cast<int>(f.tokens.size()); ++ti) {
    const Tok& tok = f.tokens[ti];
    if (tok.kind != TokKind::kComment) continue;
    // Scan the comment line by line so multi-line block comments keep the
    // per-line allow semantics of the v1 engine.
    std::istringstream body(tok.text);
    std::string comment_line;
    for (int offset = 0; std::getline(body, comment_line); ++offset) {
      std::smatch m;
      if (!std::regex_search(comment_line, m, kAllow)) continue;
      int line = tok.line + offset;
      std::string justification = m[2].str();
      if (JustificationIsEmpty(justification)) {
        text->empty_allows.push_back(line);
        continue;
      }
      // Which statement does this allow cover?
      std::set<int> lines = {line};
      bool trailing = false;
      for (int k = 0; k < ti; ++k) {
        const Tok& before = f.tokens[k];
        if (IsSig(before) && before.line <= line && line <= before.end_line) {
          trailing = true;
          break;
        }
      }
      int anchor = trailing ? FirstSigOnLine(f, line) : NextSig(f, ti + 1);
      if (anchor >= 0) {
        StmtRange r = StatementAround(f, text->scopes, anchor);
        if (r.first >= 0) {
          for (int l = f.tokens[r.first].line; l <= f.tokens[r.last].end_line;
               ++l) {
            lines.insert(l);
          }
        }
      }
      std::stringstream ids(m[1].str());
      std::string id;
      while (std::getline(ids, id, ',')) {
        size_t begin = id.find_first_not_of(" \t");
        size_t end = id.find_last_not_of(" \t");
        if (begin == std::string::npos) continue;
        std::string trimmed = id.substr(begin, end - begin + 1);
        for (int l : lines) text->allows[l][trimmed] = justification;
      }
    }
  }
}

FileText Preprocess(const std::string& content) {
  FileText text;
  text.tok = Tokenize(content);
  text.scopes = BuildScopes(text.tok);
  CollectAllows(&text);
  return text;
}

bool PathExempt(const std::string& path, const CheckDef& check) {
  for (const char* allow : check.path_allow) {
    if (path.find(allow) != std::string::npos) return true;
  }
  return false;
}

void Emit(const CheckDef& check, const std::string& path, int line,
          const FileText& text, const std::string& detail,
          std::vector<Finding>* findings) {
  Finding f;
  f.check = check.id;
  f.severity = check.severity;
  f.file = path;
  f.line = line;
  f.message = detail.empty() ? check.message
                             : std::string(check.message) + " (" + detail +
                                   ")";
  if (auto it = text.allows.find(line); it != text.allows.end()) {
    if (auto allow = it->second.find(check.id);
        allow != it->second.end()) {
      f.suppressed = true;
      f.justification = allow->second;
    }
  }
  findings->push_back(std::move(f));
}

// --- kLineRegex -----------------------------------------------------------

void RunLineRegex(const CheckDef& check, const std::string& path,
                  const FileText& text, std::vector<Finding>* findings) {
  const std::vector<std::string>& lines =
      check.scan_strings ? text.tok.code_strings : text.tok.code;
  for (const char* pattern : check.patterns) {
    std::regex re(pattern);
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (std::regex_search(lines[i], m, re)) {
        Emit(check, path, static_cast<int>(i) + 1, text, m[0].str(),
             findings);
      }
    }
  }
}

// --- kUnorderedOutput -----------------------------------------------------

/// Advances past the matching closer for the opener at `*pos` (which must
/// point at `open`), spanning lines. Returns false on imbalance/EOF.
bool SkipBalanced(const std::vector<std::string>& lines, size_t* line,
                  size_t* pos, char open, char close) {
  int depth = 0;
  size_t l = *line, p = *pos;
  while (l < lines.size()) {
    const std::string& s = lines[l];
    while (p < s.size()) {
      if (s[p] == open) ++depth;
      if (s[p] == close) {
        --depth;
        if (depth == 0) {
          *line = l;
          *pos = p + 1;
          return true;
        }
      }
      ++p;
    }
    ++l;
    p = 0;
  }
  return false;
}

/// True when the scope a declaration lives in is the body of some
/// function or lambda (as opposed to file/namespace/class level, where
/// the name is potentially reachable from anywhere in the file).
bool LocallyScoped(const ScopeTree& t, int scope) {
  for (int s = scope; s >= 0; s = t.scopes[s].parent) {
    if (t.scopes[s].kind == ScopeKind::kFunction ||
        t.scopes[s].kind == ScopeKind::kLambda) {
      return true;
    }
  }
  return false;
}

bool IsAncestorOrSelf(const ScopeTree& t, int ancestor, int scope) {
  for (int s = scope; s >= 0; s = t.scopes[s].parent) {
    if (s == ancestor) return true;
  }
  return false;
}

/// Names declared with an unordered container type anywhere in the file,
/// with the scope each declaration lives in — so a loop in one function
/// is not flagged for iterating a like-named local of another (scope
/// awareness the v1 engine lacked).
std::map<std::string, std::vector<int>> UnorderedNameScopes(
    const FileText& text) {
  std::map<std::string, std::vector<int>> names;
  const std::vector<std::string>& lines = text.tok.code;
  static const std::regex kDecl(R"(std::unordered_(?:map|set)\s*<)");
  static const std::regex kName(R"(^[&\s]*([A-Za-z_]\w*))");
  for (size_t i = 0; i < lines.size(); ++i) {
    auto begin = std::sregex_iterator(lines[i].begin(), lines[i].end(),
                                      kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      size_t line = i;
      size_t pos = static_cast<size_t>(it->position()) + it->length() - 1;
      if (!SkipBalanced(lines, &line, &pos, '<', '>')) continue;
      std::string rest = lines[line].substr(pos);
      std::smatch m;
      if (!std::regex_search(rest, m, kName)) continue;
      int col = static_cast<int>(pos) + static_cast<int>(m.position(1));
      int tok = TokenAt(text.tok, static_cast<int>(line) + 1, col);
      int scope = tok >= 0 ? text.scopes.token_scope[tok] : 0;
      names[m[1].str()].push_back(scope);
    }
  }
  return names;
}

void RunUnorderedOutput(const CheckDef& check, const std::string& path,
                        const FileText& text,
                        std::vector<Finding>* findings) {
  std::map<std::string, std::vector<int>> names = UnorderedNameScopes(text);
  if (names.empty()) return;
  const std::vector<std::string>& code = text.tok.code;
  std::regex emit(check.patterns.empty() ? "$^" : check.patterns[0]);
  static const std::regex kRangeFor(
      R"(\bfor\s*\([^;)]*:\s*\*?([A-Za-z_]\w*)\s*\))");
  for (size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(code[i], m, kRangeFor)) continue;
    auto decl = names.find(m[1].str());
    if (decl == names.end()) continue;
    // Scope filter: a declaration buried in some other function's body
    // cannot be the container this loop iterates.
    int for_tok = FirstSigOnLine(text.tok, static_cast<int>(i) + 1);
    int loop_scope = for_tok >= 0 ? text.scopes.token_scope[for_tok] : 0;
    bool visible = false;
    for (int decl_scope : decl->second) {
      if (!LocallyScoped(text.scopes, decl_scope) ||
          IsAncestorOrSelf(text.scopes, decl_scope, loop_scope)) {
        visible = true;
        break;
      }
    }
    if (!visible) continue;
    // The loop body runs from the for's opening brace to its match (or to
    // the end of a single statement). Scan it for emit patterns — over the
    // string-blanked view, so an emit-looking identifier quoted inside a
    // message cannot trip the check (v1 scanned literals too).
    size_t line = i;
    size_t pos = static_cast<size_t>(m.position()) + m.length();
    size_t body_end = line;
    while (line < code.size()) {
      const std::string& s = code[line];
      size_t brace = s.find('{', pos);
      size_t semi = s.find(';', pos);
      if (brace != std::string::npos &&
          (semi == std::string::npos || brace < semi)) {
        size_t end_line = line, end_pos = brace;
        if (SkipBalanced(code, &end_line, &end_pos, '{', '}')) {
          body_end = end_line;
        }
        break;
      }
      if (semi != std::string::npos) {
        body_end = line;
        break;
      }
      ++line;
      pos = 0;
    }
    for (size_t b = i; b <= body_end && b < code.size(); ++b) {
      if (std::regex_search(code[b], emit)) {
        Emit(check, path, static_cast<int>(i) + 1, text,
             "iterates `" + m[1].str() + "`", findings);
        break;
      }
    }
  }
}

// --- kCheckSideEffect -----------------------------------------------------

void RunCheckSideEffect(const CheckDef& check, const std::string& path,
                        const FileText& text,
                        std::vector<Finding>* findings) {
  static const std::regex kMacro(R"(\bDMR_CHECK(_[A-Z]+)?\s*\()");
  // ++/--, or `=` that is not part of a comparison (the excluded preceding
  // characters kill ==, !=, <=, >= while keeping +=, -=, |= and friends).
  std::regex effect(check.patterns.empty() ? "$^" : check.patterns[0]);
  const std::vector<std::string>& code = text.tok.code;
  for (size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(code[i], m, kMacro)) continue;
    size_t line = i;
    size_t pos = static_cast<size_t>(m.position()) + m.length() - 1;
    size_t end_line = line, end_pos = pos;
    if (!SkipBalanced(code, &end_line, &end_pos, '(', ')')) continue;
    std::string arg;
    for (size_t l = line; l <= end_line; ++l) {
      size_t from = l == line ? pos + 1 : 0;
      size_t to = l == end_line ? end_pos - 1 : code[l].size();
      if (to > from) arg += code[l].substr(from, to - from);
      arg += ' ';
    }
    std::smatch hit;
    if (std::regex_search(arg, hit, effect)) {
      Emit(check, path, static_cast<int>(i) + 1, text, "`" + hit[0].str() +
               "` inside a check argument", findings);
    }
  }
}

// --- kIgnoredResult -------------------------------------------------------

void RunIgnoredResult(const CheckDef& check, const std::string& path,
                      const FileText& text,
                      std::vector<Finding>* findings) {
  const std::vector<std::string>& code = text.tok.code;
  for (const char* pattern : check.patterns) {
    // A bare statement: the configured call pattern (which may pin a
    // receiver, to tell `tracker_->AddSplits` from the void-returning
    // `job->AddSplits`) with nothing before it that could consume the
    // value.
    std::regex re(std::string(R"(^\s*()") + pattern + R"()\s*\()");
    for (size_t i = 0; i < code.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(code[i], m, re)) continue;
      // Statement filter (v2): a call that opens the line but continues a
      // statement from the previous line (`auto s =` above) has its value
      // consumed — only flag true statement starts.
      int tok = FirstSigOnLine(text.tok, static_cast<int>(i) + 1);
      if (tok >= 0) {
        int prev = PrevSig(text.tok, tok - 1);
        if (prev >= 0 && !IsPunctTok(text.tok.tokens[prev], ";") &&
            !IsPunctTok(text.tok.tokens[prev], "{") &&
            !IsPunctTok(text.tok.tokens[prev], "}")) {
          continue;
        }
      }
      Emit(check, path, static_cast<int>(i) + 1, text,
           "`" + m[1].str() + "` returns Status/Result", findings);
    }
  }
}

// --- kShardOwnership ------------------------------------------------------

/// True when the statement containing token `i` carries one of the
/// ownership annotations (the statement-level sanction form, used for
/// declarations and single-statement exemptions).
bool StatementAnnotated(const FileText& text, int i) {
  StmtRange r = StatementAround(text.tok, text.scopes, i);
  if (r.first < 0) return false;
  for (int k = r.first; k <= r.last; ++k) {
    if (IsSig(text.tok.tokens[k]) && IsAnnotationIdent(text.tok.tokens[k])) {
      return true;
    }
  }
  return false;
}

/// The shard-ownership sanction test: the access is fine inside a scope
/// annotated DMR_CROSS_SHARD_OK / DMR_BARRIER_PHASE, inside the body of a
/// DMR_SHARD_AFFINE class (the state's own home), or in a statement that
/// carries an annotation (declarations annotate themselves). Lambdas do
/// not inherit sanction from their enclosing function (scope.h).
bool OwnershipSanctioned(const FileText& text, int i) {
  constexpr unsigned kBits =
      kAnnCrossShardOk | kAnnBarrierPhase | kAnnShardAffine;
  if (ScopeSanctioned(text.scopes, text.scopes.token_scope[i], kBits)) {
    return true;
  }
  return StatementAnnotated(text, i);
}

void EmitOwnership(const CheckDef& check, const std::string& path,
                   const FileText& text, int tok, const std::string& detail,
                   std::set<std::pair<int, std::string>>* seen,
                   std::vector<Finding>* findings) {
  int line = text.tok.tokens[tok].line;
  if (!seen->insert({line, detail}).second) return;
  Emit(check, path, line, text, detail, findings);
}

void RunShardAffine(const CheckDef& check, const std::string& path,
                    const FileText& text, std::vector<Finding>* findings) {
  std::set<std::string> names(check.patterns.begin(), check.patterns.end());
  for (const AffineSymbol& sym : text.scopes.affine_symbols) {
    if (!sym.is_type) names.insert(sym.name);
  }
  std::set<std::pair<int, std::string>> seen;
  for (int i = 0; i < static_cast<int>(text.tok.tokens.size()); ++i) {
    const Tok& t = text.tok.tokens[i];
    if (!IsSig(t) || t.kind != TokKind::kIdent) continue;
    if (names.find(t.text) == names.end()) continue;
    if (OwnershipSanctioned(text, i)) continue;
    EmitOwnership(check, path, text, i, "`" + t.text + "`", &seen,
                  findings);
  }
}

/// Forward-matching ')' for the '(' at `open`; -1 on imbalance.
int MatchParenFwd(const TokenizedFile& f, int open) {
  int depth = 0;
  for (int k = open; k >= 0; k = NextSig(f, k + 1)) {
    if (IsPunctTok(f.tokens[k], "(")) ++depth;
    if (IsPunctTok(f.tokens[k], ")")) {
      if (--depth == 0) return k;
    }
  }
  return -1;
}

void RunCrossShardArena(const CheckDef& check, const std::string& path,
                        const FileText& text,
                        std::vector<Finding>* findings) {
  const TokenizedFile& f = text.tok;
  std::set<std::pair<int, std::string>> seen;
  for (int i = 0; i < static_cast<int>(f.tokens.size()); ++i) {
    const Tok& t = f.tokens[i];
    if (!IsSig(t) || t.kind != TokKind::kIdent) continue;
    if (t.text == "ShardArena") {
      int open = NextSig(f, i + 1);
      if (open < 0 || !IsPunctTok(f.tokens[open], "(")) continue;
      int close = MatchParenFwd(f, open);
      int after = close >= 0 ? NextSig(f, close + 1) : -1;
      // `Arena* ShardArena(...)` declarations/definitions are the seam
      // itself, not a use: a body brace, or a `;` with the return type's
      // `*`/`&` immediately before the name.
      if (after >= 0 && IsPunctTok(f.tokens[after], "{")) continue;
      int p = PrevSig(f, i - 1);
      if (after >= 0 && IsPunctTok(f.tokens[after], ";") && p >= 0 &&
          (IsPunctTok(f.tokens[p], "*") || IsPunctTok(f.tokens[p], "&"))) {
        continue;
      }
      if (!OwnershipSanctioned(text, i)) {
        EmitOwnership(check, path, text, i, "`ShardArena()`", &seen,
                      findings);
      }
      continue;
    }
    if (t.text == "arena") {
      int p = PrevSig(f, i - 1);
      int n = NextSig(f, i + 1);
      bool member_call = p >= 0 && n >= 0 &&
                         (IsPunctTok(f.tokens[p], ".") ||
                          IsPunctTok(f.tokens[p], "->")) &&
                         IsPunctTok(f.tokens[n], "(");
      if (member_call && !OwnershipSanctioned(text, i)) {
        EmitOwnership(check, path, text, i, "`.arena()`", &seen, findings);
      }
      continue;
    }
    if (t.text == "EventCallback") {
      // Constructing a callback with a non-null arena arms the spill box:
      // only the sanctioned seams may do that (the nullptr form is the
      // cross-shard-safe path).
      int open = NextSig(f, i + 1);
      if (open < 0 || !IsPunctTok(f.tokens[open], "(")) continue;
      int arg = NextSig(f, open + 1);
      if (arg < 0 || IsPunctTok(f.tokens[arg], ")")) continue;
      if (f.tokens[arg].kind == TokKind::kIdent &&
          f.tokens[arg].text == "nullptr") {
        continue;
      }
      if (!OwnershipSanctioned(text, i)) {
        EmitOwnership(check, path, text, i, "`EventCallback(arena, ...)`",
                      &seen, findings);
      }
      continue;
    }
  }
}

void RunStagedEventBypass(const CheckDef& check, const std::string& path,
                          const FileText& text,
                          std::vector<Finding>* findings) {
  const TokenizedFile& f = text.tok;
  std::set<std::pair<int, std::string>> seen;
  for (int i = 0; i < static_cast<int>(f.tokens.size()); ++i) {
    const Tok& t = f.tokens[i];
    if (!IsSig(t) || t.kind != TokKind::kIdent) continue;
    if (t.text == "StagedEvent") {
      int p = PrevSig(f, i - 1);
      if (p >= 0 && f.tokens[p].kind == TokKind::kIdent &&
          (f.tokens[p].text == "struct" || f.tokens[p].text == "class")) {
        continue;  // the type's own declaration
      }
      int n = NextSig(f, i + 1);
      bool construction = n >= 0 && (IsPunctTok(f.tokens[n], "{") ||
                                     IsPunctTok(f.tokens[n], "("));
      if (construction && !OwnershipSanctioned(text, i)) {
        EmitOwnership(check, path, text, i, "`StagedEvent` constructed",
                      &seen, findings);
      }
      continue;
    }
    if (t.text == "inbox") {
      if (!OwnershipSanctioned(text, i)) {
        EmitOwnership(check, path, text, i, "`inbox`", &seen, findings);
      }
    }
  }
}

void RunShardOwnership(const CheckDef& check, const std::string& path,
                       const FileText& text,
                       std::vector<Finding>* findings) {
  std::string id = check.id;
  if (id == "shard-affine") {
    RunShardAffine(check, path, text, findings);
  } else if (id == "cross-shard-arena") {
    RunCrossShardArena(check, path, text, findings);
  } else if (id == "staged-event-bypass") {
    RunStagedEventBypass(check, path, text, findings);
  }
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<CheckDef>& BuiltinChecks() {
  // The determinism check table. Adding a rule = adding a row (plus a
  // fixture under tests/lint/fixtures/).
  static const std::vector<CheckDef> kChecks = {
      {
          "wall-clock",
          Severity::kError,
          CheckKind::kLineRegex,
          "host wall-clock API; route host timing through common/host_clock "
          "so DMR_HOST_CLOCK=frozen keeps reports reproducible",
          {
              R"(std::chrono::(system|steady|high_resolution)_clock)",
              R"(\btime\s*\(\s*(nullptr|NULL|0|&))",
              R"(\bclock\s*\(\s*\))",
              R"(\b(gettimeofday|clock_gettime|localtime|gmtime)\s*\()",
          },
          {"common/host_clock", "prof/prof"},
      },
      {
          "raw-host-timer",
          Severity::kWarning,
          CheckKind::kLineRegex,
          "raw monotonic-clock read outside the sanctioned seams; host "
          "timing belongs to common/host_clock (frozen-clock reports) or "
          "prof/prof.h (calibrated scoped phase timers) so there is one "
          "place to audit for determinism leaks",
          {
              // Unqualified uses (typically behind `using namespace
              // std::chrono`); the fully qualified spelling is already an
              // error under wall-clock. The leading [^:] rejects the
              // `chrono::steady_clock` form that wall-clock owns.
              R"((^|[^:])\b(steady_clock|high_resolution_clock)\s*::\s*now\b)",
              R"(\busing\s+namespace\s+std::chrono\b)",
          },
          {"common/host_clock", "prof/prof"},
      },
      {
          "unseeded-rng",
          Severity::kError,
          CheckKind::kLineRegex,
          "unseeded randomness; use common/random.h Rng with an explicit "
          "seed so runs replay",
          {
              R"(\b(rand|srand)\s*\(\s*\))",
              R"(std::mt19937(_64)?\s+\w+\s*;)",
              R"(std::mt19937(_64)?\s*(\{\s*\}|\(\s*\)))",
              R"(std::random_device)",
          },
          {"common/random"},
      },
      {
          "unordered-output",
          Severity::kWarning,
          CheckKind::kUnorderedOutput,
          "iteration over an unordered container feeds formatted output; "
          "iteration order is not part of the determinism contract — sort "
          "first or use std::map",
          {R"((<<|\bprintf\b|\bsnprintf\b|Json|\bAppend\b|\bout\b\s*\+=))"},
          {},
      },
      {
          "pointer-output",
          Severity::kError,
          CheckKind::kLineRegex,
          "pointer value formatted into output; addresses differ across "
          "runs (ASLR) — print an index or id instead",
          {
              // dmr-lint: allow(pointer-output) the checker's own table
              R"(%p)",
              R"(<<\s*static_cast<\s*(const\s+)?void\s*\*)",
              R"(<<\s*\(\s*(const\s+)?void\s*\*\s*\))",
          },
          {},
          /*scan_strings=*/true,
      },
      {
          "check-side-effect",
          Severity::kError,
          CheckKind::kCheckSideEffect,
          "DMR_CHECK argument has a side effect; checks must stay "
          "removable without changing behavior",
          {R"((\+\+|--|[^=!<>]=(?!=)|(\.|->)\s*(push_back|pop_back|erase|insert|emplace|emplace_back|clear|reset|release)\s*\())"},
          {},
      },
      {
          "ignored-status",
          Severity::kWarning,
          CheckKind::kIgnoredResult,
          "discarded failure-carrying return",
          // Regexes pinning calls whose Status/Result encodes failure.
          // Receiver-qualified: Job has void methods of the same names.
          {R"(tracker_?\s*(?:\.|->)\s*(?:AddSplits|FinalizeInput))"},
          {},
      },
      {
          "arena-alloc",
          Severity::kError,
          CheckKind::kLineRegex,
          "raw heap allocation of a per-event object on the fire path; "
          "allocate through the simulation arena (sim/arena.h "
          "ArenaAllocator / std::allocate_shared) so event churn reuses "
          "pooled slabs instead of hitting the global allocator",
          {
              R"(std::make_shared<\s*MapAttempt)",
              R"(\bnew\s+((sim::)?internal::)?EventSlot\b)",
              R"(\bnew\s+MapAttempt\b)",
          },
          // The kernel and the arena itself are where raw slab/pool
          // allocation legitimately lives.
          {"sim/simulation", "sim/arena"},
      },
      {
          "zone-map-unordered",
          Severity::kError,
          CheckKind::kUnorderedOutput,
          "zone-map construction while iterating an unordered container; "
          "hash order decides the fold order and which index wins the "
          "catalog's first-wins registration, so pruning verdicts would "
          "stop replaying — iterate a sorted view or index by partition "
          "position",
          {R"(\b(BuildZoneMap|BuildPartitionIndex|FoldRowIntoZoneMap|MarkDict|ZoneMap)\b)"},
          {},
      },
      {
          "shard-affine",
          Severity::kError,
          CheckKind::kShardOwnership,
          "shard-affine state touched outside a sanctioned scope; a "
          "RunParallel worker owns exactly one shard, so cross-shard "
          "access here would break the determinism contract silently — "
          "annotate the seam DMR_CROSS_SHARD_OK/DMR_BARRIER_PHASE "
          "(src/sim/affinity.h) or route the work through ScheduleOnShard",
          // Seam identifiers enforced across files (the annotated
          // declarations live in src/sim/simulation.h); names declared
          // under DMR_SHARD_AFFINE in the linted file are added
          // automatically.
          {"shards_"},
          {},
      },
      {
          "cross-shard-arena",
          Severity::kError,
          CheckKind::kShardOwnership,
          "arena access outside the owning shard's sanctioned seams; a "
          "shard's arena must only be touched from its worker thread — "
          "the nullptr-arena callback (spill box freed on the target "
          "shard) is the one exemption — annotate the seam or allocate "
          "from the caller's own shard",
          {"ShardArena", "arena", "EventCallback"},
          // The arena's own plumbing (allocator handles, slab internals).
          {"sim/arena"},
      },
      {
          "staged-event-bypass",
          Severity::kError,
          CheckKind::kShardOwnership,
          "staged-event machinery used outside the staging seams; "
          "cross-shard work must be staged via ScheduleOnShardDetached "
          "and drained by MergeStagedEvents inside the barrier window, "
          "or ties and arena ownership stop replaying",
          {"StagedEvent", "inbox"},
          {},
      },
  };
  return kChecks;
}

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content) {
  FileText text = Preprocess(content);
  std::vector<Finding> findings;
  for (int line : text.empty_allows) {
    Finding f;
    f.check = "lint-allow";
    f.severity = Severity::kError;
    f.file = path;
    f.line = line;
    f.message =
        "allow() without a justification; say in the comment why this "
        "hazard is sanctioned — unexplained suppressions rot";
    findings.push_back(std::move(f));
  }
  for (const CheckDef& check : BuiltinChecks()) {
    if (PathExempt(path, check)) continue;
    switch (check.kind) {
      case CheckKind::kLineRegex:
        RunLineRegex(check, path, text, &findings);
        break;
      case CheckKind::kUnorderedOutput:
        RunUnorderedOutput(check, path, text, &findings);
        break;
      case CheckKind::kCheckSideEffect:
        RunCheckSideEffect(check, path, text, &findings);
        break;
      case CheckKind::kIgnoredResult:
        RunIgnoredResult(check, path, text, &findings);
        break;
      case CheckKind::kShardOwnership:
        RunShardOwnership(check, path, text, &findings);
        break;
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return findings;
}

std::vector<Finding> LintPath(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Finding f;
    f.check = "io";
    f.severity = Severity::kError;
    f.file = path;
    f.line = 0;
    f.message = "cannot read file";
    return {std::move(f)};
  }
  std::ostringstream content;
  content << in.rdbuf();
  return LintContent(path, content.str());
}

std::vector<Finding> LintTree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::vector<Finding> file_findings = LintPath(file);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

int CountActionable(const std::vector<Finding>& findings, Severity floor) {
  int count = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed && f.severity >= floor) ++count;
  }
  return count;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  using json::JsonQuote;
  int errors = 0, warnings = 0, notes = 0, suppressed = 0;
  std::string out = "{\"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
    } else if (f.severity == Severity::kError) {
      ++errors;
    } else if (f.severity == Severity::kWarning) {
      ++warnings;
    } else {
      ++notes;
    }
    if (!first) out += ",";
    first = false;
    out += "\n  {\"check\": " + JsonQuote(f.check) +
           ", \"severity\": " + JsonQuote(SeverityName(f.severity)) +
           ", \"file\": " + JsonQuote(f.file) +
           ", \"line\": " + std::to_string(f.line) +
           ", \"message\": " + JsonQuote(f.message) +
           ", \"suppressed\": " + (f.suppressed ? "true" : "false") +
           ", \"justification\": " + JsonQuote(f.justification) + "}";
  }
  out += first ? "]" : "\n ]";
  out += ", \"counts\": {\"errors\": " + std::to_string(errors) +
         ", \"warnings\": " + std::to_string(warnings) +
         ", \"notes\": " + std::to_string(notes) +
         ", \"suppressed\": " + std::to_string(suppressed) + "}}\n";
  return out;
}

namespace {

std::map<std::pair<std::string, std::string>, int> BaselineCounts(
    const std::vector<Finding>& findings, Severity floor) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : findings) {
    if (f.suppressed || f.severity < floor) continue;
    ++counts[{f.file, f.check}];
  }
  return counts;
}

}  // namespace

std::string BaselineToJson(const std::vector<Finding>& findings,
                           Severity floor) {
  using json::JsonQuote;
  auto counts = BaselineCounts(findings, floor);
  std::string out = "{\"floor\": ";
  out += JsonQuote(SeverityName(floor));
  out += ", \"entries\": [";
  bool first = true;
  for (const auto& [key, count] : counts) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"file\": " + JsonQuote(key.first) +
           ", \"check\": " + JsonQuote(key.second) +
           ", \"count\": " + std::to_string(count) + "}";
  }
  out += first ? "]" : "\n ]";
  out += "}\n";
  return out;
}

std::vector<std::string> CompareBaseline(
    const std::vector<Finding>& findings, Severity floor,
    const std::string& baseline_json, std::string* error) {
  std::vector<std::string> deltas;
  auto doc = json::JsonParse(baseline_json);
  if (!doc.ok()) {
    if (error) *error = doc.status().ToString();
    deltas.push_back("baseline: unparseable JSON");
    return deltas;
  }
  const json::JsonValue& root = doc.ValueOrDie();
  std::string doc_floor = root.StringOr("floor", SeverityName(floor));
  if (doc_floor != SeverityName(floor)) {
    deltas.push_back("baseline floor is '" + doc_floor +
                     "' but the linter ran at '" + SeverityName(floor) +
                     "' — regenerate with --emit-baseline");
  }
  std::map<std::pair<std::string, std::string>, int> base;
  const json::JsonValue* entries = root.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    if (error) *error = "baseline has no entries array";
    deltas.push_back("baseline: missing entries array");
    return deltas;
  }
  for (const json::JsonValue& e : entries->items) {
    std::string file = e.StringOr("file", "");
    std::string check = e.StringOr("check", "");
    int count = static_cast<int>(e.NumberOr("count", 0));
    if (file.empty() || check.empty() || count <= 0) {
      deltas.push_back("baseline: malformed entry (file/check/count)");
      continue;
    }
    base[{file, check}] += count;
  }
  auto current = BaselineCounts(findings, floor);
  // Union walk, deterministic order: new findings block, and stale
  // baseline entries block too (a baseline claiming findings that no
  // longer exist is rotten — or doctored to smuggle new ones in).
  auto bi = base.begin();
  auto ci = current.begin();
  auto report = [&deltas](const std::pair<std::string, std::string>& key,
                          int have, int recorded) {
    if (have > recorded) {
      deltas.push_back("new: " + key.first + " [" + key.second + "] " +
                       std::to_string(have) + " found, " +
                       std::to_string(recorded) + " in baseline");
    } else if (have < recorded) {
      deltas.push_back("stale: " + key.first + " [" + key.second + "] " +
                       std::to_string(have) + " found, " +
                       std::to_string(recorded) +
                       " in baseline — re-emit the baseline");
    }
  };
  while (bi != base.end() || ci != current.end()) {
    if (bi == base.end()) {
      report(ci->first, ci->second, 0);
      ++ci;
    } else if (ci == current.end()) {
      report(bi->first, 0, bi->second);
      ++bi;
    } else if (bi->first < ci->first) {
      report(bi->first, 0, bi->second);
      ++bi;
    } else if (ci->first < bi->first) {
      report(ci->first, ci->second, 0);
      ++ci;
    } else {
      report(ci->first, ci->second, bi->second);
      ++bi;
      ++ci;
    }
  }
  return deltas;
}

}  // namespace dmr::lint
