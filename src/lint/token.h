#ifndef DMR_LINT_TOKEN_H_
#define DMR_LINT_TOKEN_H_

#include <string>
#include <vector>

namespace dmr::lint {

/// \brief The lexical layer of the dmr-lint v2 engine.
///
/// Tokenize() runs one comment/string/raw-string/preprocessor-aware scan
/// over a source file and produces three aligned artifacts:
///
///   - a token stream (identifiers, literals, punctuators, comments) with
///     line/column extents, feeding the scope tracker and the symbol- and
///     statement-level checks;
///   - a `code` view: the raw lines with comments and string/char-literal
///     *contents* blanked (quote characters kept, raw strings blanked
///     wholesale), positions preserved;
///   - a `code_strings` view: comments blanked, literals kept.
///
/// The two views deliberately reproduce the v1 line-scanner's blanking
/// semantics so the regex checks migrated onto this engine keep their
/// verdicts (tests/lint/lint_diff_test.cc holds the engines to identical
/// output on every fixture).
enum class TokKind : unsigned char {
  kIdent,      ///< identifier or keyword
  kNumber,     ///< numeric literal (pp-numbers, digit separators included)
  kString,     ///< "..." (escapes understood; never spans lines)
  kRawString,  ///< R"delim(...)delim" (may span lines)
  kCharLit,    ///< '...'
  kPunct,      ///< operator/punctuator (a few multi-char forms merged)
  kComment,    ///< // or /* */ (may span lines)
};

struct Tok {
  TokKind kind = TokKind::kPunct;
  bool pp = false;    ///< token belongs to a preprocessor directive
  int line = 0;       ///< 1-based start line
  int col = 0;        ///< 0-based start column
  int end_line = 0;   ///< 1-based line of the last character
  int end_col = 0;    ///< 0-based column one past the last character
  std::string text;   ///< verbatim lexeme; multi-line lexemes keep '\n'
};

struct TokenizedFile {
  std::vector<std::string> raw;           ///< verbatim lines
  std::vector<std::string> code;          ///< comments + literal contents blanked
  std::vector<std::string> code_strings;  ///< comments blanked, literals kept
  std::vector<Tok> tokens;
};

TokenizedFile Tokenize(const std::string& content);

/// True for tokens the structural passes look at: not a comment and not
/// part of a preprocessor directive (a `{` inside a #define must not open
/// a scope).
inline bool IsSig(const Tok& t) { return t.kind != TokKind::kComment && !t.pp; }

/// Index of the nearest significant token at or after / before `i`;
/// -1 when none exists.
int NextSig(const TokenizedFile& f, int i);
int PrevSig(const TokenizedFile& f, int i);

}  // namespace dmr::lint

#endif  // DMR_LINT_TOKEN_H_
