// The PR 5 line-scanning engine, verbatim. See engine_v1.h for why it is
// kept: tests/lint/lint_diff_test.cc holds the v2 token/scope engine to
// byte-identical verdicts on every pre-v2 fixture.
#include "lint/engine_v1.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace dmr::lint::v1 {

namespace {

/// A source file after lexical preprocessing (v1: three aligned line
/// vectors plus the single-line suppression map).
struct FileText {
  std::vector<std::string> raw;            ///< verbatim lines
  std::vector<std::string> code;           ///< comments + string contents blanked
  std::vector<std::string> code_strings;   ///< comments blanked, strings kept
  /// line (1-based) -> check ids allowed there, with justification text.
  std::map<int, std::map<std::string, std::string>> allows;
};

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

/// Strips comments (and optionally string/char literal contents) by
/// blanking them with spaces. A small hand-rolled scanner: tracks block
/// comments across lines, understands escapes inside literals, and knows
/// enough about raw strings R"delim(...)delim" not to get stuck in one.
std::vector<std::string> StripLines(const std::vector<std::string>& raw,
                                    bool keep_strings) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_terminator;  // e.g. )delim"
  for (const std::string& line : raw) {
    std::string stripped = line;
    size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          stripped[i] = stripped[i + 1] = ' ';
          in_block_comment = false;
          i += 2;
        } else {
          stripped[i] = ' ';
          ++i;
        }
        continue;
      }
      if (in_raw_string) {
        size_t end = line.find(raw_terminator, i);
        size_t stop = end == std::string::npos ? line.size()
                                               : end + raw_terminator.size();
        for (size_t j = i; j < stop; ++j) {
          if (!keep_strings) stripped[j] = ' ';
        }
        if (end != std::string::npos) in_raw_string = false;
        i = stop;
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        for (size_t j = i; j < line.size(); ++j) stripped[j] = ' ';
        break;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        stripped[i] = stripped[i + 1] = ' ';
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"') {
        size_t open = line.find('(', i + 2);
        if (open != std::string::npos) {
          raw_terminator =
              ")" + line.substr(i + 2, open - (i + 2)) + "\"";
          size_t end = line.find(raw_terminator, open + 1);
          size_t stop = end == std::string::npos
                            ? line.size()
                            : end + raw_terminator.size();
          if (!keep_strings) {
            for (size_t j = i; j < stop; ++j) stripped[j] = ' ';
          }
          if (end == std::string::npos) in_raw_string = true;
          i = stop;
          continue;
        }
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        size_t j = i + 1;
        while (j < line.size()) {
          if (line[j] == '\\') {
            j += 2;
            continue;
          }
          if (line[j] == quote) break;
          ++j;
        }
        size_t stop = std::min(j + 1, line.size());
        if (!keep_strings) {
          for (size_t k = i + 1; k < stop && k < j; ++k) stripped[k] = ' ';
        }
        i = stop;
        continue;
      }
      ++i;
    }
    out.push_back(std::move(stripped));
  }
  return out;
}

bool IsBlank(const std::string& line) {
  return std::all_of(line.begin(), line.end(),
                     [](unsigned char c) { return std::isspace(c); });
}

/// Parses `// dmr-lint: allow(check-a, check-b) justification...` comments.
/// An allow covers its own line; when the line holds no code, it covers the
/// next line that does (so a suppression can sit above the flagged line).
void CollectAllows(FileText* text) {
  static const std::regex kAllow(
      R"(dmr-lint:\s*allow\(\s*([A-Za-z0-9_,\- ]+?)\s*\)\s*(.*)$)");
  for (size_t idx = 0; idx < text->raw.size(); ++idx) {
    std::smatch m;
    if (!std::regex_search(text->raw[idx], m, kAllow)) continue;
    std::string justification = m[2].str();
    int target = static_cast<int>(idx) + 1;
    if (IsBlank(text->code[idx])) {
      for (size_t next = idx + 1; next < text->raw.size(); ++next) {
        if (!IsBlank(text->code[next])) {
          target = static_cast<int>(next) + 1;
          break;
        }
      }
    }
    std::stringstream ids(m[1].str());
    std::string id;
    while (std::getline(ids, id, ',')) {
      size_t begin = id.find_first_not_of(" \t");
      size_t end = id.find_last_not_of(" \t");
      if (begin == std::string::npos) continue;
      text->allows[target][id.substr(begin, end - begin + 1)] = justification;
    }
  }
}

FileText Preprocess(const std::string& content) {
  FileText text;
  text.raw = SplitLines(content);
  text.code = StripLines(text.raw, /*keep_strings=*/false);
  text.code_strings = StripLines(text.raw, /*keep_strings=*/true);
  CollectAllows(&text);
  return text;
}

bool PathExempt(const std::string& path, const CheckDef& check) {
  for (const char* allow : check.path_allow) {
    if (path.find(allow) != std::string::npos) return true;
  }
  return false;
}

void Emit(const CheckDef& check, const std::string& path, int line,
          const FileText& text, const std::string& detail,
          std::vector<Finding>* findings) {
  Finding f;
  f.check = check.id;
  f.severity = check.severity;
  f.file = path;
  f.line = line;
  f.message = detail.empty() ? check.message
                             : std::string(check.message) + " (" + detail +
                                   ")";
  if (auto it = text.allows.find(line); it != text.allows.end()) {
    if (auto allow = it->second.find(check.id);
        allow != it->second.end()) {
      f.suppressed = true;
      f.justification = allow->second;
    }
  }
  findings->push_back(std::move(f));
}

// --- kLineRegex -----------------------------------------------------------

void RunLineRegex(const CheckDef& check, const std::string& path,
                  const FileText& text, std::vector<Finding>* findings) {
  const std::vector<std::string>& lines =
      check.scan_strings ? text.code_strings : text.code;
  for (const char* pattern : check.patterns) {
    std::regex re(pattern);
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (std::regex_search(lines[i], m, re)) {
        Emit(check, path, static_cast<int>(i) + 1, text, m[0].str(),
             findings);
      }
    }
  }
}

// --- kUnorderedOutput -----------------------------------------------------

/// Advances past the matching closer for the opener at `*pos` (which must
/// point at `open`), spanning lines. Returns false on imbalance/EOF.
bool SkipBalanced(const std::vector<std::string>& lines, size_t* line,
                  size_t* pos, char open, char close) {
  int depth = 0;
  size_t l = *line, p = *pos;
  while (l < lines.size()) {
    const std::string& s = lines[l];
    while (p < s.size()) {
      if (s[p] == open) ++depth;
      if (s[p] == close) {
        --depth;
        if (depth == 0) {
          *line = l;
          *pos = p + 1;
          return true;
        }
      }
      ++p;
    }
    ++l;
    p = 0;
  }
  return false;
}

/// Collects names declared with an unordered container type anywhere in the
/// file: `std::unordered_map<K, V> name` (members, locals, params alike).
std::set<std::string> UnorderedNames(const std::vector<std::string>& lines) {
  std::set<std::string> names;
  static const std::regex kDecl(R"(std::unordered_(?:map|set)\s*<)");
  static const std::regex kName(R"(^[&\s]*([A-Za-z_]\w*))");
  for (size_t i = 0; i < lines.size(); ++i) {
    auto begin = std::sregex_iterator(lines[i].begin(), lines[i].end(),
                                      kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      size_t line = i;
      size_t pos = static_cast<size_t>(it->position()) + it->length() - 1;
      if (!SkipBalanced(lines, &line, &pos, '<', '>')) continue;
      std::string rest = lines[line].substr(pos);
      std::smatch m;
      if (std::regex_search(rest, m, kName)) names.insert(m[1].str());
    }
  }
  return names;
}

void RunUnorderedOutput(const CheckDef& check, const std::string& path,
                        const FileText& text,
                        std::vector<Finding>* findings) {
  std::set<std::string> names = UnorderedNames(text.code);
  if (names.empty()) return;
  std::regex emit(check.patterns.empty() ? "$^" : check.patterns[0]);
  static const std::regex kRangeFor(
      R"(\bfor\s*\([^;)]*:\s*\*?([A-Za-z_]\w*)\s*\))");
  for (size_t i = 0; i < text.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(text.code[i], m, kRangeFor)) continue;
    if (names.count(m[1].str()) == 0) continue;
    // The loop body runs from the for's opening brace to its match (or to
    // the end of a single statement). Scan it for emit patterns.
    size_t line = i;
    size_t pos = static_cast<size_t>(m.position()) + m.length();
    size_t body_end = line;
    while (line < text.code.size()) {
      const std::string& s = text.code[line];
      size_t brace = s.find('{', pos);
      size_t semi = s.find(';', pos);
      if (brace != std::string::npos &&
          (semi == std::string::npos || brace < semi)) {
        size_t end_line = line, end_pos = brace;
        if (SkipBalanced(text.code, &end_line, &end_pos, '{', '}')) {
          body_end = end_line;
        }
        break;
      }
      if (semi != std::string::npos) {
        body_end = line;
        break;
      }
      ++line;
      pos = 0;
    }
    for (size_t b = i; b <= body_end && b < text.code.size(); ++b) {
      if (std::regex_search(text.code_strings[b], emit)) {
        Emit(check, path, static_cast<int>(i) + 1, text,
             "iterates `" + m[1].str() + "`", findings);
        break;
      }
    }
  }
}

// --- kCheckSideEffect -----------------------------------------------------

void RunCheckSideEffect(const CheckDef& check, const std::string& path,
                        const FileText& text,
                        std::vector<Finding>* findings) {
  static const std::regex kMacro(R"(\bDMR_CHECK(_[A-Z]+)?\s*\()");
  // ++/--, or `=` that is not part of a comparison (the excluded preceding
  // characters kill ==, !=, <=, >= while keeping +=, -=, |= and friends).
  std::regex effect(check.patterns.empty() ? "$^" : check.patterns[0]);
  for (size_t i = 0; i < text.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(text.code[i], m, kMacro)) continue;
    size_t line = i;
    size_t pos = static_cast<size_t>(m.position()) + m.length() - 1;
    size_t end_line = line, end_pos = pos;
    if (!SkipBalanced(text.code, &end_line, &end_pos, '(', ')')) continue;
    std::string arg;
    for (size_t l = line; l <= end_line; ++l) {
      size_t from = l == line ? pos + 1 : 0;
      size_t to = l == end_line ? end_pos - 1 : text.code[l].size();
      if (to > from) arg += text.code[l].substr(from, to - from);
      arg += ' ';
    }
    std::smatch hit;
    if (std::regex_search(arg, hit, effect)) {
      Emit(check, path, static_cast<int>(i) + 1, text, "`" + hit[0].str() +
               "` inside a check argument", findings);
    }
  }
}

// --- kIgnoredResult -------------------------------------------------------

void RunIgnoredResult(const CheckDef& check, const std::string& path,
                      const FileText& text,
                      std::vector<Finding>* findings) {
  for (const char* pattern : check.patterns) {
    // A bare statement: the configured call pattern (which may pin a
    // receiver, to tell `tracker_->AddSplits` from the void-returning
    // `job->AddSplits`) with nothing before it that could consume the
    // value.
    std::regex re(std::string(R"(^\s*()") + pattern + R"()\s*\()");
    for (size_t i = 0; i < text.code.size(); ++i) {
      std::smatch m;
      if (std::regex_search(text.code[i], m, re)) {
        Emit(check, path, static_cast<int>(i) + 1, text,
             "`" + m[1].str() + "` returns Status/Result", findings);
      }
    }
  }
}

}  // namespace

std::vector<Finding> LintContentV1(const std::string& path,
                                   const std::string& content) {
  FileText text = Preprocess(content);
  std::vector<Finding> findings;
  for (const CheckDef& check : BuiltinChecks()) {
    if (PathExempt(path, check)) continue;
    switch (check.kind) {
      case CheckKind::kLineRegex:
        RunLineRegex(check, path, text, &findings);
        break;
      case CheckKind::kUnorderedOutput:
        RunUnorderedOutput(check, path, text, &findings);
        break;
      case CheckKind::kCheckSideEffect:
        RunCheckSideEffect(check, path, text, &findings);
        break;
      case CheckKind::kIgnoredResult:
        RunIgnoredResult(check, path, text, &findings);
        break;
      case CheckKind::kShardOwnership:
        break;  // v2-only: needs the scope tracker
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return findings;
}

}  // namespace dmr::lint::v1
