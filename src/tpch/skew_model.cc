#include "tpch/skew_model.h"

#include <cmath>
#include <numeric>

namespace dmr::tpch {

uint64_t TotalMatchingRecords(const SkewSpec& spec) {
  double total = static_cast<double>(spec.num_partitions) *
                 static_cast<double>(spec.records_per_partition);
  return static_cast<uint64_t>(std::llround(total * spec.selectivity));
}

Result<std::vector<uint64_t>> AssignMatchingRecords(const SkewSpec& spec) {
  if (spec.num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be > 0");
  }
  if (spec.records_per_partition == 0) {
    return Status::InvalidArgument("records_per_partition must be > 0");
  }
  if (spec.selectivity < 0.0 || spec.selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in [0, 1]");
  }
  if (spec.zipf_z < 0.0) {
    return Status::InvalidArgument("zipf_z must be >= 0");
  }

  const int n = spec.num_partitions;
  const uint64_t total_matching = TotalMatchingRecords(spec);
  std::vector<uint64_t> counts(n, 0);
  if (total_matching == 0) return counts;

  if (spec.zipf_z == 0.0) {
    // Uniform: equal share per partition, remainder spread from the front.
    uint64_t base = total_matching / n;
    uint64_t rem = total_matching % n;
    for (int i = 0; i < n; ++i) {
      counts[i] = base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
    }
    return counts;
  }

  Rng rng(spec.seed);

  // Draw each matching record's rank from the Zipfian, accumulate per rank.
  ZipfGenerator zipf(n, spec.zipf_z);
  std::vector<uint64_t> per_rank(n, 0);
  for (uint64_t i = 0; i < total_matching; ++i) {
    per_rank[zipf.Next(&rng) - 1]++;
  }

  // Cap each rank at the partition capacity, spilling overflow down-rank.
  uint64_t carry = 0;
  for (int r = 0; r < n; ++r) {
    uint64_t v = per_rank[r] + carry;
    if (v > spec.records_per_partition) {
      carry = v - spec.records_per_partition;
      per_rank[r] = spec.records_per_partition;
    } else {
      per_rank[r] = v;
      carry = 0;
    }
  }
  // If capacity was exhausted everywhere (degenerate), drop the remainder.

  // Map ranks to physical partitions with a seeded permutation so heavy
  // partitions land at unpredictable offsets.
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  for (int r = 0; r < n; ++r) counts[perm[r]] = per_rank[r];
  return counts;
}

}  // namespace dmr::tpch
