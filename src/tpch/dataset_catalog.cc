#include "tpch/dataset_catalog.h"

#include <cmath>

namespace dmr::tpch {

Result<DatasetProperties> PropertiesForScale(int scale) {
  if (scale < 1) {
    return Status::InvalidArgument("scale must be >= 1, got " +
                                   std::to_string(scale));
  }
  DatasetProperties props;
  props.scale = scale;
  props.num_partitions = scale * kPartitionsPerScale;
  props.total_records =
      static_cast<uint64_t>(props.num_partitions) * kRecordsPerPartition;
  props.total_bytes = props.total_records * kLineItemRecordBytes;
  props.matching_records = static_cast<uint64_t>(std::llround(
      static_cast<double>(props.total_records) * kPaperSelectivity));
  return props;
}

const std::vector<int>& StandardScales() {
  static const std::vector<int>* scales = new std::vector<int>{5, 10, 20, 40,
                                                               100};
  return *scales;
}

}  // namespace dmr::tpch
