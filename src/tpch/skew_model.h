#ifndef DMR_TPCH_SKEW_MODEL_H_
#define DMR_TPCH_SKEW_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace dmr::tpch {

/// \brief Parameters for distributing a predicate's matching records across
/// input partitions (paper Section V-B, "Modeling data skew").
struct SkewSpec {
  int num_partitions = 40;
  uint64_t records_per_partition = 750000;
  /// Overall predicate selectivity; the paper fixes 0.05 %.
  double selectivity = 0.0005;
  /// Zipf exponent: 0 = uniform, 1 = moderate, 2 = high skew.
  double zipf_z = 0.0;
  uint64_t seed = 42;
};

/// \brief Computes how many matching records each partition holds.
///
/// For z = 0 the total matching count is split evenly (the paper's Figure 4
/// shows an equal count per partition). For z > 0, each matching record's
/// partition *rank* is drawn from Zipf(z, N) and ranks are mapped to
/// physical partitions by a seeded permutation; counts are capped by the
/// partition's record count with overflow pushed to the next ranks.
Result<std::vector<uint64_t>> AssignMatchingRecords(const SkewSpec& spec);

/// Total matching records implied by a spec: round(T * selectivity).
uint64_t TotalMatchingRecords(const SkewSpec& spec);

}  // namespace dmr::tpch

#endif  // DMR_TPCH_SKEW_MODEL_H_
