#ifndef DMR_TPCH_DATASET_CATALOG_H_
#define DMR_TPCH_DATASET_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "tpch/lineitem.h"

namespace dmr::tpch {

/// Layout constants for the paper's balanced HDFS placement (Section V-B):
/// scale 5 data splits into 40 partitions (one per disk), so 8 partitions
/// per TPC-H scale unit at 750 K records (~94 MB) per partition.
inline constexpr int kPartitionsPerScale = 8;
inline constexpr uint64_t kRecordsPerPartition = 750000;

/// The paper fixes predicate selectivity at 0.05 %.
inline constexpr double kPaperSelectivity = 0.0005;

/// The paper's sample size for all experiments.
inline constexpr uint64_t kPaperSampleSize = 10000;

/// \brief One row of the paper's Table II: properties of a generated
/// LINEITEM dataset at a given scale.
struct DatasetProperties {
  int scale = 0;
  uint64_t total_records = 0;
  uint64_t total_bytes = 0;
  int num_partitions = 0;
  /// Matching records at the paper's 0.05 % selectivity.
  uint64_t matching_records = 0;

  std::string file_name() const {
    return "lineitem_" + std::to_string(scale) + "x";
  }
};

/// Computes Table II properties for a scale factor (must be >= 1).
Result<DatasetProperties> PropertiesForScale(int scale);

/// The paper's five evaluation scales: 5, 10, 20, 40, 100.
const std::vector<int>& StandardScales();

}  // namespace dmr::tpch

#endif  // DMR_TPCH_DATASET_CATALOG_H_
