#ifndef DMR_TPCH_GENERATOR_H_
#define DMR_TPCH_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "tpch/columnar.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"
#include "tpch/skew_model.h"

namespace dmr::tpch {

/// \brief Deterministic LINEITEM row generator.
///
/// Produces TPC-H-shaped rows. `GeneratePartition` yields a partition with
/// an exact number of predicate-matching rows, uniformly interleaved with
/// non-matching rows — the materialization step the paper describes after
/// fixing each partition's matching count ("we then modified the other
/// records in each partition ... to ensure that the remaining records
/// contained random values not satisfying the predicate", Section V-B).
class LineItemGenerator {
 public:
  explicit LineItemGenerator(uint64_t seed);

  /// Generates a base row with plausible TPC-H values. The caller applies
  /// the predicate's make_matching / make_non_matching to fix its class.
  LineItemRow NextBaseRow();

  /// Generates `num_records` rows, exactly `num_matching` of which satisfy
  /// `pred.predicate`; matching rows are placed uniformly at random.
  Result<std::vector<LineItemRow>> GeneratePartition(
      uint64_t num_records, uint64_t num_matching, const SkewPredicate& pred);

  /// GeneratePartition directly into columnar form — same rows (identical
  /// RNG stream) without materializing the row vector.
  Result<ColumnarPartition> GenerateColumnarPartition(
      uint64_t num_records, uint64_t num_matching, const SkewPredicate& pred);

 private:
  Rng rng_;
  int64_t next_orderkey_ = 1;
};

/// \brief A fully materialized dataset (small scales; real record content).
struct MaterializedDataset {
  std::vector<std::vector<LineItemRow>> partitions;
  /// Columnar form of `partitions` (index-parallel) scanned by the
  /// vectorized engine. Populated by MaterializeDataset; datasets built by
  /// other means (e.g. loaded from disk) may leave it empty, in which case
  /// the runtime converts on the fly.
  ColumnarDataset columnar;
  SkewPredicate predicate;
  std::vector<uint64_t> matching_per_partition;

  uint64_t total_records() const;
  uint64_t total_matching() const;
};

/// \brief Materializes a skewed dataset per `spec` using the suite predicate
/// for spec.zipf_z (or `pred` when supplied).
Result<MaterializedDataset> MaterializeDataset(const SkewSpec& spec);
Result<MaterializedDataset> MaterializeDataset(const SkewSpec& spec,
                                               const SkewPredicate& pred);

/// \brief Memoized, spec-keyed AssignMatchingRecords.
///
/// The per-partition matching-count assignment (and every stat derived
/// from it) is predicate-independent, so it is cached once per SkewSpec —
/// not once per (spec, predicate) dataset entry, where each new predicate
/// on the same dataset used to repeat the whole stats pass. Thread-safe;
/// returns a shared immutable vector.
Result<std::shared_ptr<const std::vector<uint64_t>>>
AssignMatchingRecordsShared(const SkewSpec& spec);

/// \brief Memoized MaterializeDataset: one materialization per distinct
/// (spec, predicate) for the process lifetime.
///
/// Grid drivers and tests that sweep other knobs at a fixed z hit the same
/// dataset repeatedly; this returns a shared immutable copy instead of
/// regenerating. Thread-safe: concurrent callers (e.g. under ParallelFor)
/// requesting the same key block on one generation instead of duplicating
/// it. Errors are memoized too (generation is deterministic).
Result<std::shared_ptr<const MaterializedDataset>> MaterializeDatasetShared(
    const SkewSpec& spec);
Result<std::shared_ptr<const MaterializedDataset>> MaterializeDatasetShared(
    const SkewSpec& spec, const SkewPredicate& pred);

}  // namespace dmr::tpch

#endif  // DMR_TPCH_GENERATOR_H_
