#ifndef DMR_TPCH_COLUMNAR_H_
#define DMR_TPCH_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/value.h"
#include "tpch/lineitem.h"

namespace dmr::tpch {

/// \brief Physical storage class of a LINEITEM column in the columnar
/// layout consumed by the vectorized predicate engine (exec/vectorized.h).
///
/// kDate32 columns hold 'YYYY-MM-DD' strings packed as yyyymmdd int32;
/// because the textual form is fixed-width and zero-padded, numeric order
/// on the packed form coincides with the lexicographic (== chronological)
/// order the interpreted evaluator uses. kDict columns hold per-partition
/// dictionary codes; low-cardinality string columns compress to a handful
/// of distinct values, which lets LIKE and comparisons against literals be
/// resolved once per distinct value instead of once per row.
enum class ColumnKind : uint8_t { kInt64, kDouble, kDate32, kDict };

/// Physical kind of each LineItemColumn.
ColumnKind LineItemColumnKind(int column);

/// Slot of `column` within the arrays of its kind — the index into the
/// ZoneMap min/max/presence arrays below and the typed column accessors.
int LineItemColumnSlot(int column);

/// Packs a strict 'YYYY-MM-DD' string as yyyymmdd. Rejects any other shape
/// (wrong width, non-digits, out-of-range month/day fields).
Result<int32_t> EncodeDate32(std::string_view date);

/// Formats a packed date back to 'YYYY-MM-DD' into `buf` (>= 11 bytes,
/// NUL-terminated) and returns a view of the 10 characters written.
std::string_view FormatDate32(int32_t packed, char* buf);

/// Convenience allocation-returning form of FormatDate32.
std::string DecodeDate32(int32_t packed);

/// \brief Per-column string dictionary: codes are assigned in first-seen
/// order, so building is deterministic for a deterministic row stream.
class StringDictionary {
 public:
  /// Returns the code for `s`, interning it on first sight.
  uint32_t GetOrAdd(std::string_view s);

  const std::string& value(uint32_t code) const { return values_[code]; }
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// \brief Zone map over a contiguous row range of one ColumnarPartition:
/// per-slot min/max for the numeric and date columns plus a per-dictionary
/// value-presence bitmap (bit `code` set <=> `code` occurs in the range).
/// The partition-level map covers [0, num_rows) and is maintained
/// incrementally by AppendRow, so both FromRows and the direct-generation
/// path (LineItemGenerator::GenerateColumnarPartition) populate it for
/// free; BuildZoneMap produces refined per-range maps for the piggybacked
/// index (exec/layout_catalog.h).
///
/// Dictionary codes are assigned in first-seen order by StringDictionary,
/// so the bitmaps — and therefore every zone-map byte — are deterministic
/// for a deterministic row stream. An empty range keeps the min sentinels
/// above the max sentinels; consumers must check rows() first.
struct ZoneMap {
  static constexpr int kI64Slots = 5;
  static constexpr int kF64Slots = 3;
  static constexpr int kDateSlots = 3;
  static constexpr int kDictSlots = 5;

  uint32_t row_begin = 0;
  uint32_t row_end = 0;  // exclusive

  /// Per-kind validity bitmasks: bit `slot` set <=> that slot's min/max (or
  /// presence bitmap) was actually folded over the range. Piggybacked
  /// per-batch maps fold only the columns the triggering predicate reads
  /// (near-zero build overhead, LIAH-style); consumers must treat an
  /// invalid slot as "could hold anything". The incremental partition-level
  /// map folds every column, so the default is all-valid.
  uint8_t i64_valid = (1u << kI64Slots) - 1;
  uint8_t f64_valid = (1u << kF64Slots) - 1;
  uint8_t date_valid = (1u << kDateSlots) - 1;
  uint8_t dict_valid = (1u << kDictSlots) - 1;

  int64_t i64_min[kI64Slots];
  int64_t i64_max[kI64Slots];
  double f64_min[kF64Slots];
  double f64_max[kF64Slots];
  int32_t date_min[kDateSlots];
  int32_t date_max[kDateSlots];
  /// Presence bitmap per dict slot, indexed by dictionary code; sized lazily
  /// to the highest code seen in the range (absent words mean absent codes).
  std::vector<uint64_t> dict_present[kDictSlots];

  ZoneMap();

  uint32_t rows() const { return row_end - row_begin; }

  bool I64Valid(int slot) const { return (i64_valid >> slot) & 1; }
  bool F64Valid(int slot) const { return (f64_valid >> slot) & 1; }
  bool DateValid(int slot) const { return (date_valid >> slot) & 1; }
  bool DictValid(int slot) const { return (dict_valid >> slot) & 1; }

  /// True when dictionary code `code` of dict slot `slot` occurs in range.
  /// Meaningful only when DictValid(slot).
  bool DictHas(int slot, uint32_t code) const;

  /// Marks dictionary code `code` of dict slot `slot` present.
  void MarkDict(int slot, uint32_t code);
};

/// \brief Selects which column slots BuildZoneMap folds — the piggybacked
/// index builds maps only over the columns its predicate consults, so the
/// extra pass costs about as much as the predicate scan itself instead of
/// touching all sixteen columns. Defaults to every column.
struct ZoneMapColumns {
  uint8_t i64 = (1u << ZoneMap::kI64Slots) - 1;
  uint8_t f64 = (1u << ZoneMap::kF64Slots) - 1;
  uint8_t date = (1u << ZoneMap::kDateSlots) - 1;
  uint8_t dict = (1u << ZoneMap::kDictSlots) - 1;

  static ZoneMapColumns All() { return ZoneMapColumns(); }
  static ZoneMapColumns None() { return ZoneMapColumns{0, 0, 0, 0}; }

  bool empty() const { return i64 == 0 && f64 == 0 && date == 0 && dict == 0; }

  /// Marks LineItemColumn `column` (schema index) as selected.
  void MarkColumn(int column);
};

/// \brief One LINEITEM partition in columnar form: fixed-width arrays for
/// numeric and date columns, dictionary codes for string columns. This is
/// the unit the vectorized engine scans in batches; the row-oriented
/// std::vector<LineItemRow> form remains the interchange/serde format.
class ColumnarPartition {
 public:
  ColumnarPartition();

  /// Converts a row-oriented partition. Fails if a date column holds a
  /// string that is not strict 'YYYY-MM-DD' (the layout cannot represent
  /// it; such rows never come out of LineItemGenerator).
  static Result<ColumnarPartition> FromRows(
      const std::vector<LineItemRow>& rows);

  /// Appends one row (the direct-generation path).
  Status AppendRow(const LineItemRow& row);

  uint32_t num_rows() const { return num_rows_; }

  /// Typed column accessors; the slot must match LineItemColumnKind.
  const std::vector<int64_t>& Int64Column(int column) const;
  const std::vector<double>& DoubleColumn(int column) const;
  const std::vector<int32_t>& Date32Column(int column) const;
  const std::vector<uint32_t>& DictCodes(int column) const;
  const StringDictionary& Dictionary(int column) const;

  /// Reconstructs row `row` (byte-identical to the LineItemRow that was
  /// appended/converted).
  LineItemRow RowAt(uint32_t row) const;

  /// Materializes row `row` as a typed tuple in schema order — identical
  /// to tpch::ToTuple(RowAt(row)) without the intermediate struct.
  expr::Tuple TupleAt(uint32_t row) const;

  /// Materializes a single column value of row `row`.
  expr::Value ValueAt(int column, uint32_t row) const;

  /// Approximate heap footprint (for tests / sizing notes).
  size_t MemoryBytes() const;

  /// Partition-level zone map over [0, num_rows), maintained incrementally.
  const ZoneMap& zone_map() const { return zone_map_; }

  /// Builds a refined zone map over rows [begin, end) — the piggybacked
  /// per-batch index of exec/layout_catalog.h. `begin <= end <= num_rows`.
  /// Only the slots selected by `cols` are folded (column-major tight
  /// loops); unselected slots are marked invalid in the result and read as
  /// "unknown" by the zone-map evaluator.
  ZoneMap BuildZoneMap(uint32_t begin, uint32_t end,
                       const ZoneMapColumns& cols = ZoneMapColumns()) const;

 private:
  friend class ColumnarPartitionTestPeer;

  /// Folds the already-stored row `row` into `*zm` (min/max + dict bits).
  void FoldRowIntoZoneMap(uint32_t row, ZoneMap* zm) const;

  uint32_t num_rows_ = 0;
  // Slot order within each kind follows LineItemColumn order.
  std::vector<std::vector<int64_t>> i64_;     // orderkey..quantity
  std::vector<std::vector<double>> f64_;      // extendedprice, discount, tax
  std::vector<std::vector<int32_t>> date_;    // shipdate, commitdate, receiptdate
  std::vector<std::vector<uint32_t>> codes_;  // returnflag..comment
  std::vector<StringDictionary> dicts_;
  ZoneMap zone_map_;
};

/// \brief A dataset in columnar form, parallel to
/// MaterializedDataset::partitions.
using ColumnarDataset = std::vector<ColumnarPartition>;

}  // namespace dmr::tpch

#endif  // DMR_TPCH_COLUMNAR_H_
