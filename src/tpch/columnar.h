#ifndef DMR_TPCH_COLUMNAR_H_
#define DMR_TPCH_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/value.h"
#include "tpch/lineitem.h"

namespace dmr::tpch {

/// \brief Physical storage class of a LINEITEM column in the columnar
/// layout consumed by the vectorized predicate engine (exec/vectorized.h).
///
/// kDate32 columns hold 'YYYY-MM-DD' strings packed as yyyymmdd int32;
/// because the textual form is fixed-width and zero-padded, numeric order
/// on the packed form coincides with the lexicographic (== chronological)
/// order the interpreted evaluator uses. kDict columns hold per-partition
/// dictionary codes; low-cardinality string columns compress to a handful
/// of distinct values, which lets LIKE and comparisons against literals be
/// resolved once per distinct value instead of once per row.
enum class ColumnKind : uint8_t { kInt64, kDouble, kDate32, kDict };

/// Physical kind of each LineItemColumn.
ColumnKind LineItemColumnKind(int column);

/// Packs a strict 'YYYY-MM-DD' string as yyyymmdd. Rejects any other shape
/// (wrong width, non-digits, out-of-range month/day fields).
Result<int32_t> EncodeDate32(std::string_view date);

/// Formats a packed date back to 'YYYY-MM-DD' into `buf` (>= 11 bytes,
/// NUL-terminated) and returns a view of the 10 characters written.
std::string_view FormatDate32(int32_t packed, char* buf);

/// Convenience allocation-returning form of FormatDate32.
std::string DecodeDate32(int32_t packed);

/// \brief Per-column string dictionary: codes are assigned in first-seen
/// order, so building is deterministic for a deterministic row stream.
class StringDictionary {
 public:
  /// Returns the code for `s`, interning it on first sight.
  uint32_t GetOrAdd(std::string_view s);

  const std::string& value(uint32_t code) const { return values_[code]; }
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// \brief One LINEITEM partition in columnar form: fixed-width arrays for
/// numeric and date columns, dictionary codes for string columns. This is
/// the unit the vectorized engine scans in batches; the row-oriented
/// std::vector<LineItemRow> form remains the interchange/serde format.
class ColumnarPartition {
 public:
  ColumnarPartition();

  /// Converts a row-oriented partition. Fails if a date column holds a
  /// string that is not strict 'YYYY-MM-DD' (the layout cannot represent
  /// it; such rows never come out of LineItemGenerator).
  static Result<ColumnarPartition> FromRows(
      const std::vector<LineItemRow>& rows);

  /// Appends one row (the direct-generation path).
  Status AppendRow(const LineItemRow& row);

  uint32_t num_rows() const { return num_rows_; }

  /// Typed column accessors; the slot must match LineItemColumnKind.
  const std::vector<int64_t>& Int64Column(int column) const;
  const std::vector<double>& DoubleColumn(int column) const;
  const std::vector<int32_t>& Date32Column(int column) const;
  const std::vector<uint32_t>& DictCodes(int column) const;
  const StringDictionary& Dictionary(int column) const;

  /// Reconstructs row `row` (byte-identical to the LineItemRow that was
  /// appended/converted).
  LineItemRow RowAt(uint32_t row) const;

  /// Materializes row `row` as a typed tuple in schema order — identical
  /// to tpch::ToTuple(RowAt(row)) without the intermediate struct.
  expr::Tuple TupleAt(uint32_t row) const;

  /// Materializes a single column value of row `row`.
  expr::Value ValueAt(int column, uint32_t row) const;

  /// Approximate heap footprint (for tests / sizing notes).
  size_t MemoryBytes() const;

 private:
  friend class ColumnarPartitionTestPeer;

  uint32_t num_rows_ = 0;
  // Slot order within each kind follows LineItemColumn order.
  std::vector<std::vector<int64_t>> i64_;     // orderkey..quantity
  std::vector<std::vector<double>> f64_;      // extendedprice, discount, tax
  std::vector<std::vector<int32_t>> date_;    // shipdate, commitdate, receiptdate
  std::vector<std::vector<uint32_t>> codes_;  // returnflag..comment
  std::vector<StringDictionary> dicts_;
};

/// \brief A dataset in columnar form, parallel to
/// MaterializedDataset::partitions.
using ColumnarDataset = std::vector<ColumnarPartition>;

}  // namespace dmr::tpch

#endif  // DMR_TPCH_COLUMNAR_H_
