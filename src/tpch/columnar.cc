#include "tpch/columnar.h"

#include <limits>

#include "common/logging.h"
#include "prof/prof.h"

namespace dmr::tpch {

namespace {

// Slot of `column` within the arrays of its kind.
struct ColumnSlot {
  ColumnKind kind;
  int slot;
};

constexpr ColumnSlot kSlots[kNumLineItemColumns] = {
    {ColumnKind::kInt64, 0},   // ORDERKEY
    {ColumnKind::kInt64, 1},   // PARTKEY
    {ColumnKind::kInt64, 2},   // SUPPKEY
    {ColumnKind::kInt64, 3},   // LINENUMBER
    {ColumnKind::kInt64, 4},   // QUANTITY
    {ColumnKind::kDouble, 0},  // EXTENDEDPRICE
    {ColumnKind::kDouble, 1},  // DISCOUNT
    {ColumnKind::kDouble, 2},  // TAX
    {ColumnKind::kDict, 0},    // RETURNFLAG
    {ColumnKind::kDict, 1},    // LINESTATUS
    {ColumnKind::kDate32, 0},  // SHIPDATE
    {ColumnKind::kDate32, 1},  // COMMITDATE
    {ColumnKind::kDate32, 2},  // RECEIPTDATE
    {ColumnKind::kDict, 2},    // SHIPINSTRUCT
    {ColumnKind::kDict, 3},    // SHIPMODE
    {ColumnKind::kDict, 4},    // COMMENT
};

int SlotOf(int column, ColumnKind kind) {
  DMR_CHECK_GE(column, 0);
  DMR_CHECK_LT(column, int{kNumLineItemColumns});
  DMR_CHECK(kSlots[column].kind == kind);
  return kSlots[column].slot;
}

}  // namespace

ColumnKind LineItemColumnKind(int column) {
  DMR_CHECK_GE(column, 0);
  DMR_CHECK_LT(column, int{kNumLineItemColumns});
  return kSlots[column].kind;
}

int LineItemColumnSlot(int column) {
  DMR_CHECK_GE(column, 0);
  DMR_CHECK_LT(column, int{kNumLineItemColumns});
  return kSlots[column].slot;
}

Result<int32_t> EncodeDate32(std::string_view date) {
  if (date.size() != 10 || date[4] != '-' || date[7] != '-') {
    return Status::InvalidArgument("not a canonical YYYY-MM-DD date: '" +
                                   std::string(date) + "'");
  }
  int32_t fields[3] = {0, 0, 0};
  static constexpr int kSpans[3][2] = {{0, 4}, {5, 2}, {8, 2}};
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < kSpans[f][1]; ++i) {
      char c = date[kSpans[f][0] + i];
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("not a canonical YYYY-MM-DD date: '" +
                                       std::string(date) + "'");
      }
      fields[f] = fields[f] * 10 + (c - '0');
    }
  }
  if (fields[1] < 1 || fields[1] > 12 || fields[2] < 1 || fields[2] > 31) {
    return Status::InvalidArgument("out-of-range date fields in '" +
                                   std::string(date) + "'");
  }
  return fields[0] * 10000 + fields[1] * 100 + fields[2];
}

std::string_view FormatDate32(int32_t packed, char* buf) {
  int32_t year = packed / 10000;
  int32_t month = (packed / 100) % 100;
  int32_t day = packed % 100;
  buf[0] = static_cast<char>('0' + (year / 1000) % 10);
  buf[1] = static_cast<char>('0' + (year / 100) % 10);
  buf[2] = static_cast<char>('0' + (year / 10) % 10);
  buf[3] = static_cast<char>('0' + year % 10);
  buf[4] = '-';
  buf[5] = static_cast<char>('0' + month / 10);
  buf[6] = static_cast<char>('0' + month % 10);
  buf[7] = '-';
  buf[8] = static_cast<char>('0' + day / 10);
  buf[9] = static_cast<char>('0' + day % 10);
  buf[10] = '\0';
  return std::string_view(buf, 10);
}

std::string DecodeDate32(int32_t packed) {
  char buf[11];
  return std::string(FormatDate32(packed, buf));
}

ZoneMap::ZoneMap() {
  for (int s = 0; s < kI64Slots; ++s) {
    i64_min[s] = std::numeric_limits<int64_t>::max();
    i64_max[s] = std::numeric_limits<int64_t>::min();
  }
  for (int s = 0; s < kF64Slots; ++s) {
    f64_min[s] = std::numeric_limits<double>::infinity();
    f64_max[s] = -std::numeric_limits<double>::infinity();
  }
  for (int s = 0; s < kDateSlots; ++s) {
    date_min[s] = std::numeric_limits<int32_t>::max();
    date_max[s] = std::numeric_limits<int32_t>::min();
  }
}

bool ZoneMap::DictHas(int slot, uint32_t code) const {
  const std::vector<uint64_t>& words = dict_present[slot];
  uint32_t word = code >> 6;
  if (word >= words.size()) return false;
  return (words[word] >> (code & 63)) & 1;
}

void ZoneMapColumns::MarkColumn(int column) {
  const uint8_t bit = static_cast<uint8_t>(1u << LineItemColumnSlot(column));
  switch (LineItemColumnKind(column)) {
    case ColumnKind::kInt64: i64 |= bit; break;
    case ColumnKind::kDouble: f64 |= bit; break;
    case ColumnKind::kDate32: date |= bit; break;
    case ColumnKind::kDict: dict |= bit; break;
  }
}

void ZoneMap::MarkDict(int slot, uint32_t code) {
  std::vector<uint64_t>& words = dict_present[slot];
  uint32_t word = code >> 6;
  if (word >= words.size()) words.resize(word + 1, 0);
  words[word] |= uint64_t{1} << (code & 63);
}

uint32_t StringDictionary::GetOrAdd(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.emplace_back(s);
  index_.emplace(values_.back(), code);
  return code;
}

ColumnarPartition::ColumnarPartition()
    : i64_(5), f64_(3), date_(3), codes_(5), dicts_(5) {}

Result<ColumnarPartition> ColumnarPartition::FromRows(
    const std::vector<LineItemRow>& rows) {
  static const prof::PhaseId kBuildPhase =
      prof::RegisterPhase("tpch", "columnar_build");
  prof::ScopedTimer prof_frame(kBuildPhase);
  ColumnarPartition part;
  for (auto& col : part.i64_) col.reserve(rows.size());
  for (auto& col : part.f64_) col.reserve(rows.size());
  for (auto& col : part.date_) col.reserve(rows.size());
  for (auto& col : part.codes_) col.reserve(rows.size());
  for (const auto& row : rows) {
    DMR_RETURN_NOT_OK(part.AppendRow(row));
  }
  prof::AccountAlloc(prof::AllocSite::kColumnarBuild, 1, part.MemoryBytes());
  return part;
}

Status ColumnarPartition::AppendRow(const LineItemRow& row) {
  DMR_ASSIGN_OR_RETURN(int32_t shipdate, EncodeDate32(row.shipdate));
  DMR_ASSIGN_OR_RETURN(int32_t commitdate, EncodeDate32(row.commitdate));
  DMR_ASSIGN_OR_RETURN(int32_t receiptdate, EncodeDate32(row.receiptdate));
  i64_[0].push_back(row.orderkey);
  i64_[1].push_back(row.partkey);
  i64_[2].push_back(row.suppkey);
  i64_[3].push_back(row.linenumber);
  i64_[4].push_back(row.quantity);
  f64_[0].push_back(row.extendedprice);
  f64_[1].push_back(row.discount);
  f64_[2].push_back(row.tax);
  date_[0].push_back(shipdate);
  date_[1].push_back(commitdate);
  date_[2].push_back(receiptdate);
  codes_[0].push_back(dicts_[0].GetOrAdd(row.returnflag));
  codes_[1].push_back(dicts_[1].GetOrAdd(row.linestatus));
  codes_[2].push_back(dicts_[2].GetOrAdd(row.shipinstruct));
  codes_[3].push_back(dicts_[3].GetOrAdd(row.shipmode));
  codes_[4].push_back(dicts_[4].GetOrAdd(row.comment));
  FoldRowIntoZoneMap(num_rows_, &zone_map_);
  ++num_rows_;
  zone_map_.row_end = num_rows_;
  return Status::OK();
}

void ColumnarPartition::FoldRowIntoZoneMap(uint32_t row, ZoneMap* zm) const {
  for (int s = 0; s < ZoneMap::kI64Slots; ++s) {
    int64_t v = i64_[s][row];
    if (v < zm->i64_min[s]) zm->i64_min[s] = v;
    if (v > zm->i64_max[s]) zm->i64_max[s] = v;
  }
  for (int s = 0; s < ZoneMap::kF64Slots; ++s) {
    double v = f64_[s][row];
    if (v < zm->f64_min[s]) zm->f64_min[s] = v;
    if (v > zm->f64_max[s]) zm->f64_max[s] = v;
  }
  for (int s = 0; s < ZoneMap::kDateSlots; ++s) {
    int32_t v = date_[s][row];
    if (v < zm->date_min[s]) zm->date_min[s] = v;
    if (v > zm->date_max[s]) zm->date_max[s] = v;
  }
  for (int s = 0; s < ZoneMap::kDictSlots; ++s) {
    zm->MarkDict(s, codes_[s][row]);
  }
}

ZoneMap ColumnarPartition::BuildZoneMap(uint32_t begin, uint32_t end,
                                        const ZoneMapColumns& cols) const {
  DMR_CHECK_LE(begin, end);
  DMR_CHECK_LE(end, num_rows_);
  ZoneMap zm;
  zm.row_begin = begin;
  zm.row_end = end;
  zm.i64_valid = cols.i64 & ((1u << ZoneMap::kI64Slots) - 1);
  zm.f64_valid = cols.f64 & ((1u << ZoneMap::kF64Slots) - 1);
  zm.date_valid = cols.date & ((1u << ZoneMap::kDateSlots) - 1);
  zm.dict_valid = cols.dict & ((1u << ZoneMap::kDictSlots) - 1);
  // Column-major folds: one tight min/max (or bit-set) sweep per selected
  // slot over its contiguous array, instead of a per-row fold that touches
  // every slot. Results are identical to the row-major fold for the
  // selected slots.
  for (int s = 0; s < ZoneMap::kI64Slots; ++s) {
    if (!zm.I64Valid(s)) continue;
    const int64_t* v = i64_[s].data();
    int64_t mn = zm.i64_min[s];
    int64_t mx = zm.i64_max[s];
    for (uint32_t row = begin; row < end; ++row) {
      mn = v[row] < mn ? v[row] : mn;
      mx = v[row] > mx ? v[row] : mx;
    }
    zm.i64_min[s] = mn;
    zm.i64_max[s] = mx;
  }
  for (int s = 0; s < ZoneMap::kF64Slots; ++s) {
    if (!zm.F64Valid(s)) continue;
    const double* v = f64_[s].data();
    double mn = zm.f64_min[s];
    double mx = zm.f64_max[s];
    for (uint32_t row = begin; row < end; ++row) {
      mn = v[row] < mn ? v[row] : mn;
      mx = v[row] > mx ? v[row] : mx;
    }
    zm.f64_min[s] = mn;
    zm.f64_max[s] = mx;
  }
  for (int s = 0; s < ZoneMap::kDateSlots; ++s) {
    if (!zm.DateValid(s)) continue;
    const int32_t* v = date_[s].data();
    int32_t mn = zm.date_min[s];
    int32_t mx = zm.date_max[s];
    for (uint32_t row = begin; row < end; ++row) {
      mn = v[row] < mn ? v[row] : mn;
      mx = v[row] > mx ? v[row] : mx;
    }
    zm.date_min[s] = mn;
    zm.date_max[s] = mx;
  }
  for (int s = 0; s < ZoneMap::kDictSlots; ++s) {
    if (!zm.DictValid(s)) continue;
    std::vector<uint64_t>& words = zm.dict_present[s];
    // Pre-size to the dictionary, set bits without per-row bounds checks,
    // then trim trailing zero words so the result is byte-identical to the
    // lazily-sized row-major fold.
    words.assign((dicts_[s].size() + 63) / 64, 0);
    const uint32_t* c = codes_[s].data();
    for (uint32_t row = begin; row < end; ++row) {
      words[c[row] >> 6] |= uint64_t{1} << (c[row] & 63);
    }
    while (!words.empty() && words.back() == 0) words.pop_back();
  }
  return zm;
}

const std::vector<int64_t>& ColumnarPartition::Int64Column(int column) const {
  return i64_[SlotOf(column, ColumnKind::kInt64)];
}

const std::vector<double>& ColumnarPartition::DoubleColumn(int column) const {
  return f64_[SlotOf(column, ColumnKind::kDouble)];
}

const std::vector<int32_t>& ColumnarPartition::Date32Column(int column) const {
  return date_[SlotOf(column, ColumnKind::kDate32)];
}

const std::vector<uint32_t>& ColumnarPartition::DictCodes(int column) const {
  return codes_[SlotOf(column, ColumnKind::kDict)];
}

const StringDictionary& ColumnarPartition::Dictionary(int column) const {
  return dicts_[SlotOf(column, ColumnKind::kDict)];
}

LineItemRow ColumnarPartition::RowAt(uint32_t row) const {
  DMR_CHECK_LT(row, num_rows_);
  LineItemRow out;
  out.orderkey = i64_[0][row];
  out.partkey = i64_[1][row];
  out.suppkey = i64_[2][row];
  out.linenumber = i64_[3][row];
  out.quantity = i64_[4][row];
  out.extendedprice = f64_[0][row];
  out.discount = f64_[1][row];
  out.tax = f64_[2][row];
  out.returnflag = dicts_[0].value(codes_[0][row]);
  out.linestatus = dicts_[1].value(codes_[1][row]);
  out.shipdate = DecodeDate32(date_[0][row]);
  out.commitdate = DecodeDate32(date_[1][row]);
  out.receiptdate = DecodeDate32(date_[2][row]);
  out.shipinstruct = dicts_[2].value(codes_[2][row]);
  out.shipmode = dicts_[3].value(codes_[3][row]);
  out.comment = dicts_[4].value(codes_[4][row]);
  return out;
}

expr::Tuple ColumnarPartition::TupleAt(uint32_t row) const {
  DMR_CHECK_LT(row, num_rows_);
  expr::Tuple tuple;
  tuple.reserve(kNumLineItemColumns);
  for (int c = 0; c < kNumLineItemColumns; ++c) {
    tuple.push_back(ValueAt(c, row));
  }
  return tuple;
}

expr::Value ColumnarPartition::ValueAt(int column, uint32_t row) const {
  DMR_CHECK_LT(row, num_rows_);
  const ColumnSlot& slot = kSlots[column];
  switch (slot.kind) {
    case ColumnKind::kInt64:
      return i64_[slot.slot][row];
    case ColumnKind::kDouble:
      return f64_[slot.slot][row];
    case ColumnKind::kDate32:
      return DecodeDate32(date_[slot.slot][row]);
    case ColumnKind::kDict:
      return dicts_[slot.slot].value(codes_[slot.slot][row]);
  }
  return expr::Value(false);  // unreachable
}

size_t ColumnarPartition::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : i64_) bytes += col.capacity() * sizeof(int64_t);
  for (const auto& col : f64_) bytes += col.capacity() * sizeof(double);
  for (const auto& col : date_) bytes += col.capacity() * sizeof(int32_t);
  for (const auto& col : codes_) bytes += col.capacity() * sizeof(uint32_t);
  for (const auto& dict : dicts_) {
    for (const auto& v : dict.values()) bytes += v.size() + sizeof(v);
  }
  return bytes;
}

}  // namespace dmr::tpch
