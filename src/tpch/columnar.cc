#include "tpch/columnar.h"

#include "common/logging.h"

namespace dmr::tpch {

namespace {

// Slot of `column` within the arrays of its kind.
struct ColumnSlot {
  ColumnKind kind;
  int slot;
};

constexpr ColumnSlot kSlots[kNumLineItemColumns] = {
    {ColumnKind::kInt64, 0},   // ORDERKEY
    {ColumnKind::kInt64, 1},   // PARTKEY
    {ColumnKind::kInt64, 2},   // SUPPKEY
    {ColumnKind::kInt64, 3},   // LINENUMBER
    {ColumnKind::kInt64, 4},   // QUANTITY
    {ColumnKind::kDouble, 0},  // EXTENDEDPRICE
    {ColumnKind::kDouble, 1},  // DISCOUNT
    {ColumnKind::kDouble, 2},  // TAX
    {ColumnKind::kDict, 0},    // RETURNFLAG
    {ColumnKind::kDict, 1},    // LINESTATUS
    {ColumnKind::kDate32, 0},  // SHIPDATE
    {ColumnKind::kDate32, 1},  // COMMITDATE
    {ColumnKind::kDate32, 2},  // RECEIPTDATE
    {ColumnKind::kDict, 2},    // SHIPINSTRUCT
    {ColumnKind::kDict, 3},    // SHIPMODE
    {ColumnKind::kDict, 4},    // COMMENT
};

int SlotOf(int column, ColumnKind kind) {
  DMR_CHECK_GE(column, 0);
  DMR_CHECK_LT(column, int{kNumLineItemColumns});
  DMR_CHECK(kSlots[column].kind == kind);
  return kSlots[column].slot;
}

}  // namespace

ColumnKind LineItemColumnKind(int column) {
  DMR_CHECK_GE(column, 0);
  DMR_CHECK_LT(column, int{kNumLineItemColumns});
  return kSlots[column].kind;
}

Result<int32_t> EncodeDate32(std::string_view date) {
  if (date.size() != 10 || date[4] != '-' || date[7] != '-') {
    return Status::InvalidArgument("not a canonical YYYY-MM-DD date: '" +
                                   std::string(date) + "'");
  }
  int32_t fields[3] = {0, 0, 0};
  static constexpr int kSpans[3][2] = {{0, 4}, {5, 2}, {8, 2}};
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < kSpans[f][1]; ++i) {
      char c = date[kSpans[f][0] + i];
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("not a canonical YYYY-MM-DD date: '" +
                                       std::string(date) + "'");
      }
      fields[f] = fields[f] * 10 + (c - '0');
    }
  }
  if (fields[1] < 1 || fields[1] > 12 || fields[2] < 1 || fields[2] > 31) {
    return Status::InvalidArgument("out-of-range date fields in '" +
                                   std::string(date) + "'");
  }
  return fields[0] * 10000 + fields[1] * 100 + fields[2];
}

std::string_view FormatDate32(int32_t packed, char* buf) {
  int32_t year = packed / 10000;
  int32_t month = (packed / 100) % 100;
  int32_t day = packed % 100;
  buf[0] = static_cast<char>('0' + (year / 1000) % 10);
  buf[1] = static_cast<char>('0' + (year / 100) % 10);
  buf[2] = static_cast<char>('0' + (year / 10) % 10);
  buf[3] = static_cast<char>('0' + year % 10);
  buf[4] = '-';
  buf[5] = static_cast<char>('0' + month / 10);
  buf[6] = static_cast<char>('0' + month % 10);
  buf[7] = '-';
  buf[8] = static_cast<char>('0' + day / 10);
  buf[9] = static_cast<char>('0' + day % 10);
  buf[10] = '\0';
  return std::string_view(buf, 10);
}

std::string DecodeDate32(int32_t packed) {
  char buf[11];
  return std::string(FormatDate32(packed, buf));
}

uint32_t StringDictionary::GetOrAdd(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.emplace_back(s);
  index_.emplace(values_.back(), code);
  return code;
}

ColumnarPartition::ColumnarPartition()
    : i64_(5), f64_(3), date_(3), codes_(5), dicts_(5) {}

Result<ColumnarPartition> ColumnarPartition::FromRows(
    const std::vector<LineItemRow>& rows) {
  ColumnarPartition part;
  for (auto& col : part.i64_) col.reserve(rows.size());
  for (auto& col : part.f64_) col.reserve(rows.size());
  for (auto& col : part.date_) col.reserve(rows.size());
  for (auto& col : part.codes_) col.reserve(rows.size());
  for (const auto& row : rows) {
    DMR_RETURN_NOT_OK(part.AppendRow(row));
  }
  return part;
}

Status ColumnarPartition::AppendRow(const LineItemRow& row) {
  DMR_ASSIGN_OR_RETURN(int32_t shipdate, EncodeDate32(row.shipdate));
  DMR_ASSIGN_OR_RETURN(int32_t commitdate, EncodeDate32(row.commitdate));
  DMR_ASSIGN_OR_RETURN(int32_t receiptdate, EncodeDate32(row.receiptdate));
  i64_[0].push_back(row.orderkey);
  i64_[1].push_back(row.partkey);
  i64_[2].push_back(row.suppkey);
  i64_[3].push_back(row.linenumber);
  i64_[4].push_back(row.quantity);
  f64_[0].push_back(row.extendedprice);
  f64_[1].push_back(row.discount);
  f64_[2].push_back(row.tax);
  date_[0].push_back(shipdate);
  date_[1].push_back(commitdate);
  date_[2].push_back(receiptdate);
  codes_[0].push_back(dicts_[0].GetOrAdd(row.returnflag));
  codes_[1].push_back(dicts_[1].GetOrAdd(row.linestatus));
  codes_[2].push_back(dicts_[2].GetOrAdd(row.shipinstruct));
  codes_[3].push_back(dicts_[3].GetOrAdd(row.shipmode));
  codes_[4].push_back(dicts_[4].GetOrAdd(row.comment));
  ++num_rows_;
  return Status::OK();
}

const std::vector<int64_t>& ColumnarPartition::Int64Column(int column) const {
  return i64_[SlotOf(column, ColumnKind::kInt64)];
}

const std::vector<double>& ColumnarPartition::DoubleColumn(int column) const {
  return f64_[SlotOf(column, ColumnKind::kDouble)];
}

const std::vector<int32_t>& ColumnarPartition::Date32Column(int column) const {
  return date_[SlotOf(column, ColumnKind::kDate32)];
}

const std::vector<uint32_t>& ColumnarPartition::DictCodes(int column) const {
  return codes_[SlotOf(column, ColumnKind::kDict)];
}

const StringDictionary& ColumnarPartition::Dictionary(int column) const {
  return dicts_[SlotOf(column, ColumnKind::kDict)];
}

LineItemRow ColumnarPartition::RowAt(uint32_t row) const {
  DMR_CHECK_LT(row, num_rows_);
  LineItemRow out;
  out.orderkey = i64_[0][row];
  out.partkey = i64_[1][row];
  out.suppkey = i64_[2][row];
  out.linenumber = i64_[3][row];
  out.quantity = i64_[4][row];
  out.extendedprice = f64_[0][row];
  out.discount = f64_[1][row];
  out.tax = f64_[2][row];
  out.returnflag = dicts_[0].value(codes_[0][row]);
  out.linestatus = dicts_[1].value(codes_[1][row]);
  out.shipdate = DecodeDate32(date_[0][row]);
  out.commitdate = DecodeDate32(date_[1][row]);
  out.receiptdate = DecodeDate32(date_[2][row]);
  out.shipinstruct = dicts_[2].value(codes_[2][row]);
  out.shipmode = dicts_[3].value(codes_[3][row]);
  out.comment = dicts_[4].value(codes_[4][row]);
  return out;
}

expr::Tuple ColumnarPartition::TupleAt(uint32_t row) const {
  DMR_CHECK_LT(row, num_rows_);
  expr::Tuple tuple;
  tuple.reserve(kNumLineItemColumns);
  for (int c = 0; c < kNumLineItemColumns; ++c) {
    tuple.push_back(ValueAt(c, row));
  }
  return tuple;
}

expr::Value ColumnarPartition::ValueAt(int column, uint32_t row) const {
  DMR_CHECK_LT(row, num_rows_);
  const ColumnSlot& slot = kSlots[column];
  switch (slot.kind) {
    case ColumnKind::kInt64:
      return i64_[slot.slot][row];
    case ColumnKind::kDouble:
      return f64_[slot.slot][row];
    case ColumnKind::kDate32:
      return DecodeDate32(date_[slot.slot][row]);
    case ColumnKind::kDict:
      return dicts_[slot.slot].value(codes_[slot.slot][row]);
  }
  return expr::Value(false);  // unreachable
}

size_t ColumnarPartition::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : i64_) bytes += col.capacity() * sizeof(int64_t);
  for (const auto& col : f64_) bytes += col.capacity() * sizeof(double);
  for (const auto& col : date_) bytes += col.capacity() * sizeof(int32_t);
  for (const auto& col : codes_) bytes += col.capacity() * sizeof(uint32_t);
  for (const auto& dict : dicts_) {
    for (const auto& v : dict.values()) bytes += v.size() + sizeof(v);
  }
  return bytes;
}

}  // namespace dmr::tpch
