#ifndef DMR_TPCH_LINEITEM_H_
#define DMR_TPCH_LINEITEM_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "expr/value.h"

namespace dmr::tpch {

/// \brief One row of the TPC-H LINEITEM table (all 16 columns).
struct LineItemRow {
  int64_t orderkey = 0;
  int64_t partkey = 0;
  int64_t suppkey = 0;
  int64_t linenumber = 0;
  int64_t quantity = 0;          // 1..50 (matching rows may exceed)
  double extendedprice = 0.0;
  double discount = 0.0;         // 0.00..0.10
  double tax = 0.0;              // 0.00..0.08
  std::string returnflag;        // "R" | "A" | "N"
  std::string linestatus;        // "O" | "F"
  std::string shipdate;          // YYYY-MM-DD
  std::string commitdate;
  std::string receiptdate;
  std::string shipinstruct;
  std::string shipmode;
  std::string comment;
};

/// \brief The LINEITEM schema shared by the expression evaluator, the Hive
/// front end and the local runtime.
const expr::Schema& LineItemSchema();

/// Column indexes into LineItemSchema() / ToTuple() output.
enum LineItemColumn : int {
  kOrderKey = 0,
  kPartKey,
  kSuppKey,
  kLineNumber,
  kQuantity,
  kExtendedPrice,
  kDiscount,
  kTax,
  kReturnFlag,
  kLineStatus,
  kShipDate,
  kCommitDate,
  kReceiptDate,
  kShipInstruct,
  kShipMode,
  kComment,
  kNumLineItemColumns,
};

/// Materializes the row as a typed tuple in schema column order.
expr::Tuple ToTuple(const LineItemRow& row);

/// Serializes in TPC-H '|' separated text form (no trailing separator).
std::string SerializeRow(const LineItemRow& row);

/// Parses a row written by SerializeRow.
Result<LineItemRow> ParseRow(std::string_view line);

/// Average serialized record size used for sizing partitions (bytes).
inline constexpr uint64_t kLineItemRecordBytes = 132;

}  // namespace dmr::tpch

#endif  // DMR_TPCH_LINEITEM_H_
