#include "tpch/generator.h"

#include <cmath>
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "prof/prof.h"

namespace dmr::tpch {

namespace {

const char* kReturnFlags[] = {"R", "A", "N"};
const char* kLineStatusValues[] = {"O", "F"};
const char* kShipInstructValues[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                            "MAIL", "FOB"};
const char* kCommentWords[] = {"carefully", "quickly", "furiously", "slyly",
                               "blithely", "deposits", "requests", "packages",
                               "accounts", "theodolites", "pinto", "beans"};

std::string RandomDate(Rng* rng, int year_lo, int year_hi) {
  int year = static_cast<int>(rng->NextInRange(year_lo, year_hi));
  int month = static_cast<int>(rng->NextInRange(1, 12));
  int day = static_cast<int>(rng->NextInRange(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

}  // namespace

LineItemGenerator::LineItemGenerator(uint64_t seed) : rng_(seed) {}

LineItemRow LineItemGenerator::NextBaseRow() {
  LineItemRow row;
  row.orderkey = next_orderkey_++;
  row.partkey = rng_.NextInRange(1, 200000);
  row.suppkey = rng_.NextInRange(1, 10000);
  row.linenumber = rng_.NextInRange(1, 7);
  row.quantity = rng_.NextInRange(1, 50);
  row.extendedprice =
      std::round(static_cast<double>(row.quantity) *
                 (900.0 + static_cast<double>(rng_.NextInRange(0, 110000)) /
                              100.0) *
                 100.0) /
      100.0;
  row.discount = 0.01 * static_cast<double>(rng_.NextInRange(0, 10));
  row.tax = 0.01 * static_cast<double>(rng_.NextInRange(0, 8));
  row.returnflag = kReturnFlags[rng_.NextBounded(3)];
  row.linestatus = kLineStatusValues[rng_.NextBounded(2)];
  row.shipdate = RandomDate(&rng_, 1992, 1998);
  row.commitdate = RandomDate(&rng_, 1992, 1998);
  row.receiptdate = RandomDate(&rng_, 1992, 1998);
  row.shipinstruct = kShipInstructValues[rng_.NextBounded(4)];
  row.shipmode = kShipModes[rng_.NextBounded(7)];
  row.comment = std::string(kCommentWords[rng_.NextBounded(12)]) + " " +
                kCommentWords[rng_.NextBounded(12)];
  return row;
}

Result<std::vector<LineItemRow>> LineItemGenerator::GeneratePartition(
    uint64_t num_records, uint64_t num_matching, const SkewPredicate& pred) {
  if (num_matching > num_records) {
    return Status::InvalidArgument(
        "num_matching exceeds num_records (" + std::to_string(num_matching) +
        " > " + std::to_string(num_records) + ")");
  }
  std::vector<LineItemRow> rows;
  rows.reserve(num_records);
  uint64_t remaining_matching = num_matching;
  for (uint64_t i = 0; i < num_records; ++i) {
    LineItemRow row = NextBaseRow();
    uint64_t remaining_rows = num_records - i;
    // Exact uniform placement: include this row among the matching set with
    // probability remaining_matching / remaining_rows.
    bool matching =
        remaining_matching > 0 &&
        rng_.NextBounded(remaining_rows) < remaining_matching;
    if (matching) {
      pred.make_matching(&rng_, &row);
      --remaining_matching;
    } else {
      pred.make_non_matching(&rng_, &row);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<ColumnarPartition> LineItemGenerator::GenerateColumnarPartition(
    uint64_t num_records, uint64_t num_matching, const SkewPredicate& pred) {
  if (num_matching > num_records) {
    return Status::InvalidArgument(
        "num_matching exceeds num_records (" + std::to_string(num_matching) +
        " > " + std::to_string(num_records) + ")");
  }
  ColumnarPartition part;
  uint64_t remaining_matching = num_matching;
  for (uint64_t i = 0; i < num_records; ++i) {
    LineItemRow row = NextBaseRow();
    uint64_t remaining_rows = num_records - i;
    bool matching =
        remaining_matching > 0 &&
        rng_.NextBounded(remaining_rows) < remaining_matching;
    if (matching) {
      pred.make_matching(&rng_, &row);
      --remaining_matching;
    } else {
      pred.make_non_matching(&rng_, &row);
    }
    DMR_RETURN_NOT_OK(part.AppendRow(row));
  }
  return part;
}

uint64_t MaterializedDataset::total_records() const {
  uint64_t total = 0;
  for (const auto& p : partitions) total += p.size();
  return total;
}

uint64_t MaterializedDataset::total_matching() const {
  uint64_t total = 0;
  for (uint64_t m : matching_per_partition) total += m;
  return total;
}

Result<MaterializedDataset> MaterializeDataset(const SkewSpec& spec) {
  DMR_ASSIGN_OR_RETURN(SkewPredicate pred, PredicateForSkew(spec.zipf_z));
  return MaterializeDataset(spec, pred);
}

Result<MaterializedDataset> MaterializeDataset(const SkewSpec& spec,
                                               const SkewPredicate& pred) {
  DMR_ASSIGN_OR_RETURN(std::shared_ptr<const std::vector<uint64_t>> shared,
                       AssignMatchingRecordsShared(spec));
  const std::vector<uint64_t>& matching = *shared;
  MaterializedDataset ds;
  ds.predicate = pred;
  ds.matching_per_partition = matching;
  ds.partitions.reserve(spec.num_partitions);
  LineItemGenerator gen(spec.seed ^ 0xABCD1234ULL);
  ds.columnar.reserve(spec.num_partitions);
  for (int i = 0; i < spec.num_partitions; ++i) {
    DMR_ASSIGN_OR_RETURN(
        std::vector<LineItemRow> rows,
        gen.GeneratePartition(spec.records_per_partition, matching[i], pred));
    DMR_ASSIGN_OR_RETURN(ColumnarPartition columnar,
                         ColumnarPartition::FromRows(rows));
    ds.columnar.push_back(std::move(columnar));
    ds.partitions.push_back(std::move(rows));
  }
  return ds;
}

namespace {

using SharedDataset = std::shared_ptr<const MaterializedDataset>;

/// The predicate-independent part of the cache key: everything the
/// matching-count assignment (and the stats derived from it) depends on.
std::string SpecCacheKey(const SkewSpec& spec) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "p=%d|r=%llu|sel=%.17g|z=%.17g|seed=%llu|",
                spec.num_partitions,
                static_cast<unsigned long long>(spec.records_per_partition),
                spec.selectivity, spec.zipf_z,
                static_cast<unsigned long long>(spec.seed));
  return buf;
}

std::string DatasetCacheKey(const SkewSpec& spec, const SkewPredicate& pred) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pz=%.17g|", pred.zipf_z);
  return SpecCacheKey(spec) + buf + pred.name + "|" + pred.sql;
}

}  // namespace

Result<std::shared_ptr<const std::vector<uint64_t>>>
AssignMatchingRecordsShared(const SkewSpec& spec) {
  using SharedCounts = std::shared_ptr<const std::vector<uint64_t>>;
  static std::mutex mu;
  static auto& entries =
      *new std::unordered_map<std::string, Result<SharedCounts>>();
  const std::string key = SpecCacheKey(spec);
  std::lock_guard<std::mutex> lock(mu);
  auto it = entries.find(key);
  if (it == entries.end()) {
    Result<std::vector<uint64_t>> counts = AssignMatchingRecords(spec);
    Result<SharedCounts> entry =
        counts.ok() ? Result<SharedCounts>(
                          std::make_shared<const std::vector<uint64_t>>(
                              std::move(*counts)))
                    : Result<SharedCounts>(counts.status());
    it = entries.emplace(key, std::move(entry)).first;
  }
  return it->second;
}

Result<SharedDataset> MaterializeDatasetShared(const SkewSpec& spec) {
  DMR_ASSIGN_OR_RETURN(SkewPredicate pred, PredicateForSkew(spec.zipf_z));
  return MaterializeDatasetShared(spec, pred);
}

Result<SharedDataset> MaterializeDatasetShared(const SkewSpec& spec,
                                               const SkewPredicate& pred) {
  // Keyed futures rather than finished values: a second thread asking for a
  // dataset that is still being generated blocks on the same generation
  // instead of starting its own.
  static std::mutex mu;
  static auto& entries =
      *new std::unordered_map<std::string,
                              std::shared_future<Result<SharedDataset>>>();
  const std::string key = DatasetCacheKey(spec, pred);
  std::promise<Result<SharedDataset>> promise;
  std::shared_future<Result<SharedDataset>> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it == entries.end()) {
      owner = true;
      future = promise.get_future().share();
      entries.emplace(key, future);
    } else {
      future = it->second;
    }
  }
  if (owner) {
    static const prof::PhaseId kMaterializePhase =
        prof::RegisterPhase("tpch", "materialize_dataset");
    prof::ScopedTimer prof_frame(kMaterializePhase);
    Result<MaterializedDataset> ds = MaterializeDataset(spec, pred);
    if (ds.ok()) {
      uint64_t bytes = 0;
      for (const auto& part : ds->partitions) {
        bytes += part.size() * kLineItemRecordBytes;
      }
      for (const auto& col : ds->columnar) bytes += col.MemoryBytes();
      prof::AccountAlloc(prof::AllocSite::kDatasetCacheBuild, 1, bytes);
      promise.set_value(
          std::make_shared<const MaterializedDataset>(std::move(*ds)));
    } else {
      promise.set_value(ds.status());
    }
  } else {
    prof::AccountAlloc(prof::AllocSite::kDatasetCacheHit, 1, 0);
  }
  return future.get();
}

}  // namespace dmr::tpch
