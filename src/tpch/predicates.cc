#include "tpch/predicates.h"

#include <cmath>

namespace dmr::tpch {

namespace {

using expr::Bin;
using expr::BinaryOp;
using expr::Col;
using expr::Lit;

double RoundCents(double v) { return std::round(v * 100.0) / 100.0; }

std::vector<SkewPredicate> BuildSuite() {
  std::vector<SkewPredicate> suite;

  // z = 0 (uniform): QUANTITY > 50. Normal rows draw 1..50.
  {
    SkewPredicate p;
    p.name = "QTY_GT_50";
    p.zipf_z = 0.0;
    p.sql = "QUANTITY > 50";
    p.predicate = Bin(BinaryOp::kGt, Col("QUANTITY"), Lit(int64_t{50}));
    p.make_matching = [](Rng* rng, LineItemRow* row) {
      row->quantity = rng->NextInRange(51, 60);
    };
    p.make_non_matching = [](Rng* rng, LineItemRow* row) {
      row->quantity = rng->NextInRange(1, 50);
    };
    suite.push_back(std::move(p));
  }

  // z = 1 (moderate skew): DISCOUNT > 0.10. Normal rows draw 0.00..0.10.
  {
    SkewPredicate p;
    p.name = "DISC_GT_10PCT";
    p.zipf_z = 1.0;
    p.sql = "DISCOUNT > 0.10";
    p.predicate = Bin(BinaryOp::kGt, Col("DISCOUNT"), Lit(0.10));
    p.make_matching = [](Rng* rng, LineItemRow* row) {
      row->discount = RoundCents(0.11 + 0.01 * rng->NextInRange(0, 9));
    };
    p.make_non_matching = [](Rng* rng, LineItemRow* row) {
      row->discount = RoundCents(0.01 * rng->NextInRange(0, 10));
    };
    suite.push_back(std::move(p));
  }

  // z = 2 (high skew): TAX > 0.08. Normal rows draw 0.00..0.08.
  {
    SkewPredicate p;
    p.name = "TAX_GT_8PCT";
    p.zipf_z = 2.0;
    p.sql = "TAX > 0.08";
    p.predicate = Bin(BinaryOp::kGt, Col("TAX"), Lit(0.08));
    p.make_matching = [](Rng* rng, LineItemRow* row) {
      row->tax = RoundCents(0.09 + 0.01 * rng->NextInRange(0, 6));
    };
    p.make_non_matching = [](Rng* rng, LineItemRow* row) {
      row->tax = RoundCents(0.01 * rng->NextInRange(0, 8));
    };
    suite.push_back(std::move(p));
  }

  return suite;
}

}  // namespace

const std::vector<SkewPredicate>& PredicateSuite() {
  static const std::vector<SkewPredicate>* suite =
      new std::vector<SkewPredicate>(BuildSuite());
  return *suite;
}

Result<SkewPredicate> PredicateForSkew(double z) {
  for (const auto& p : PredicateSuite()) {
    if (p.zipf_z == z) return p;
  }
  return Status::NotFound("no predicate registered for zipf z = " +
                          std::to_string(z));
}

}  // namespace dmr::tpch
