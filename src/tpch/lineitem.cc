#include "tpch/lineitem.h"

#include <cstdio>

#include "common/strings.h"

namespace dmr::tpch {

const expr::Schema& LineItemSchema() {
  using expr::ValueType;
  static const expr::Schema* schema = new expr::Schema({
      {"ORDERKEY", ValueType::kInt64},
      {"PARTKEY", ValueType::kInt64},
      {"SUPPKEY", ValueType::kInt64},
      {"LINENUMBER", ValueType::kInt64},
      {"QUANTITY", ValueType::kInt64},
      {"EXTENDEDPRICE", ValueType::kDouble},
      {"DISCOUNT", ValueType::kDouble},
      {"TAX", ValueType::kDouble},
      {"RETURNFLAG", ValueType::kString},
      {"LINESTATUS", ValueType::kString},
      {"SHIPDATE", ValueType::kString},
      {"COMMITDATE", ValueType::kString},
      {"RECEIPTDATE", ValueType::kString},
      {"SHIPINSTRUCT", ValueType::kString},
      {"SHIPMODE", ValueType::kString},
      {"COMMENT", ValueType::kString},
  });
  return *schema;
}

expr::Tuple ToTuple(const LineItemRow& row) {
  return expr::Tuple{
      row.orderkey,    row.partkey,    row.suppkey,     row.linenumber,
      row.quantity,    row.extendedprice, row.discount, row.tax,
      row.returnflag,  row.linestatus, row.shipdate,    row.commitdate,
      row.receiptdate, row.shipinstruct, row.shipmode,  row.comment,
  };
}

std::string SerializeRow(const LineItemRow& row) {
  char num[64];
  std::string out;
  out.reserve(160);
  auto add_int = [&](int64_t v) {
    std::snprintf(num, sizeof(num), "%lld", static_cast<long long>(v));
    out += num;
    out += '|';
  };
  auto add_double = [&](double v) {
    std::snprintf(num, sizeof(num), "%.2f", v);
    out += num;
    out += '|';
  };
  add_int(row.orderkey);
  add_int(row.partkey);
  add_int(row.suppkey);
  add_int(row.linenumber);
  add_int(row.quantity);
  add_double(row.extendedprice);
  add_double(row.discount);
  add_double(row.tax);
  out += row.returnflag;
  out += '|';
  out += row.linestatus;
  out += '|';
  out += row.shipdate;
  out += '|';
  out += row.commitdate;
  out += '|';
  out += row.receiptdate;
  out += '|';
  out += row.shipinstruct;
  out += '|';
  out += row.shipmode;
  out += '|';
  out += row.comment;
  return out;
}

Result<LineItemRow> ParseRow(std::string_view line) {
  std::vector<std::string> fields = SplitString(line, '|');
  if (fields.size() != kNumLineItemColumns) {
    return Status::ParseError("expected " +
                              std::to_string(int(kNumLineItemColumns)) +
                              " fields, got " + std::to_string(fields.size()));
  }
  LineItemRow row;
  auto parse_int = [&](int i, int64_t* out) {
    return ParseInt64(fields[i], out);
  };
  auto parse_double = [&](int i, double* out) {
    return ParseDouble(fields[i], out);
  };
  if (!parse_int(0, &row.orderkey) || !parse_int(1, &row.partkey) ||
      !parse_int(2, &row.suppkey) || !parse_int(3, &row.linenumber) ||
      !parse_int(4, &row.quantity) || !parse_double(5, &row.extendedprice) ||
      !parse_double(6, &row.discount) || !parse_double(7, &row.tax)) {
    return Status::ParseError("malformed numeric field in: " +
                              std::string(line));
  }
  row.returnflag = fields[8];
  row.linestatus = fields[9];
  row.shipdate = fields[10];
  row.commitdate = fields[11];
  row.receiptdate = fields[12];
  row.shipinstruct = fields[13];
  row.shipmode = fields[14];
  row.comment = fields[15];
  return row;
}

}  // namespace dmr::tpch
