#include "tpch/dataset_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/properties.h"
#include "common/strings.h"

namespace dmr::tpch {

namespace fs = std::filesystem;

std::string PartitionFileName(int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d.tbl", index);
  return buf;
}

Status WriteDatasetToDirectory(const MaterializedDataset& dataset,
                               const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  if (fs::exists(fs::path(dir) / "MANIFEST")) {
    return Status::AlreadyExists("directory '" + dir +
                                 "' already holds a dataset");
  }

  for (size_t p = 0; p < dataset.partitions.size(); ++p) {
    fs::path path = fs::path(dir) / PartitionFileName(static_cast<int>(p));
    std::ofstream out(path);
    if (!out) {
      return Status::IoError("cannot open '" + path.string() +
                             "' for writing");
    }
    for (const auto& row : dataset.partitions[p]) {
      out << SerializeRow(row) << '\n';
    }
    if (!out) {
      return Status::IoError("short write to '" + path.string() + "'");
    }
  }

  Properties manifest;
  manifest.SetInt("num_partitions",
                  static_cast<int64_t>(dataset.partitions.size()));
  manifest.Set("predicate.name", dataset.predicate.name);
  manifest.Set("predicate.sql", dataset.predicate.sql);
  manifest.SetDouble("predicate.zipf_z", dataset.predicate.zipf_z);
  for (size_t p = 0; p < dataset.matching_per_partition.size(); ++p) {
    manifest.SetInt("matching." + std::to_string(p),
                    static_cast<int64_t>(dataset.matching_per_partition[p]));
  }
  std::ofstream out(fs::path(dir) / "MANIFEST");
  if (!out) {
    return Status::IoError("cannot write MANIFEST in '" + dir + "'");
  }
  out << manifest.ToString();
  return out ? Status::OK()
             : Status::IoError("short write to MANIFEST in '" + dir + "'");
}

Result<std::vector<LineItemRow>> ReadPartitionFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::vector<LineItemRow> rows;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto row = ParseRow(line);
    if (!row.ok()) {
      return Status::ParseError(path + ":" + std::to_string(line_no) + ": " +
                                row.status().message());
    }
    rows.push_back(*std::move(row));
  }
  return rows;
}

Result<MaterializedDataset> ReadDatasetFromDirectory(const std::string& dir) {
  std::ifstream manifest_in(fs::path(dir) / "MANIFEST");
  if (!manifest_in) {
    return Status::NotFound("no MANIFEST in '" + dir + "'");
  }
  std::string text((std::istreambuf_iterator<char>(manifest_in)),
                   std::istreambuf_iterator<char>());
  DMR_ASSIGN_OR_RETURN(Properties manifest, Properties::Parse(text));
  DMR_ASSIGN_OR_RETURN(int64_t num_partitions,
                       manifest.GetInt("num_partitions", -1));
  if (num_partitions < 0) {
    return Status::ParseError("MANIFEST lacks num_partitions");
  }

  MaterializedDataset dataset;
  std::string pred_name = manifest.Get("predicate.name");
  for (const auto& pred : PredicateSuite()) {
    if (pred.name == pred_name) dataset.predicate = pred;
  }
  if (dataset.predicate.name != pred_name) {
    return Status::NotFound("MANIFEST predicate '" + pred_name +
                            "' is not in the predicate suite");
  }

  dataset.partitions.reserve(num_partitions);
  dataset.matching_per_partition.reserve(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    fs::path path = fs::path(dir) / PartitionFileName(p);
    DMR_ASSIGN_OR_RETURN(std::vector<LineItemRow> rows,
                         ReadPartitionFile(path.string()));
    dataset.partitions.push_back(std::move(rows));
    DMR_ASSIGN_OR_RETURN(
        int64_t matching,
        manifest.GetInt("matching." + std::to_string(p), -1));
    if (matching < 0) {
      return Status::ParseError("MANIFEST lacks matching count for partition " +
                                std::to_string(p));
    }
    dataset.matching_per_partition.push_back(
        static_cast<uint64_t>(matching));
  }
  return dataset;
}

}  // namespace dmr::tpch
