#ifndef DMR_TPCH_PREDICATES_H_
#define DMR_TPCH_PREDICATES_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "expr/expression.h"
#include "tpch/lineitem.h"

namespace dmr::tpch {

/// \brief A sampling predicate tied to a skew level — the analogue of the
/// paper's Table III (one arbitrary column per skew degree, all with 0.05 %
/// overall selectivity; skew is imposed by the generator's placement of the
/// matching records, see skew_model.h).
struct SkewPredicate {
  std::string name;
  /// Skew degree this predicate is paired with in the evaluation.
  double zipf_z;
  /// SQL text as it appears in the Hive query's WHERE clause.
  std::string sql;
  /// Compiled predicate over LineItemSchema().
  expr::ExprPtr predicate;
  /// Mutates a base row so the predicate holds.
  std::function<void(Rng*, LineItemRow*)> make_matching;
  /// Mutates a base row so the predicate does not hold.
  std::function<void(Rng*, LineItemRow*)> make_non_matching;
};

/// The three evaluation predicates (z = 0, 1, 2).
const std::vector<SkewPredicate>& PredicateSuite();

/// Returns the suite predicate paired with skew `z` (0, 1 or 2).
Result<SkewPredicate> PredicateForSkew(double z);

}  // namespace dmr::tpch

#endif  // DMR_TPCH_PREDICATES_H_
