#ifndef DMR_TPCH_DATASET_IO_H_
#define DMR_TPCH_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "tpch/generator.h"

namespace dmr::tpch {

/// \brief On-disk layout for materialized datasets.
///
/// A dataset directory holds one '|'-separated text file per partition
/// (part-00000.tbl, part-00001.tbl, ...) plus a MANIFEST in Properties
/// format recording the predicate and per-partition matching counts — the
/// un-indexed, filesystem-resident form of the data the paper samples from.

/// Writes `dataset` under `dir` (created if absent; must be empty of
/// previous parts or the write fails with AlreadyExists).
Status WriteDatasetToDirectory(const MaterializedDataset& dataset,
                               const std::string& dir);

/// Reads a dataset directory written by WriteDatasetToDirectory.
Result<MaterializedDataset> ReadDatasetFromDirectory(const std::string& dir);

/// Reads one partition file (rows in SerializeRow format, one per line).
Result<std::vector<LineItemRow>> ReadPartitionFile(const std::string& path);

/// Name of partition `index`'s file within a dataset directory.
std::string PartitionFileName(int index);

}  // namespace dmr::tpch

#endif  // DMR_TPCH_DATASET_IO_H_
