#include "obs/trace.h"

#include <cstdio>

#include "common/json.h"

namespace dmr::obs {

using json::JsonQuote;

namespace {

/// Renders a simulated-seconds timestamp as integer-ish microseconds (the
/// trace-event format's time unit). Three decimals keeps sub-microsecond
/// event ordering without bloating the file.
std::string Micros(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string Number(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceArgs

TraceArgs& TraceArgs::Raw(std::string_view key, std::string rendered) {
  fields_.emplace_back(std::string(key), std::move(rendered));
  return *this;
}

TraceArgs& TraceArgs::Set(std::string_view key, std::string_view value) {
  return Raw(key, JsonQuote(value));
}
TraceArgs& TraceArgs::Set(std::string_view key, const char* value) {
  return Raw(key, JsonQuote(value));
}
TraceArgs& TraceArgs::Set(std::string_view key, double value) {
  return Raw(key, Number(value));
}
TraceArgs& TraceArgs::Set(std::string_view key, int value) {
  return Raw(key, std::to_string(value));
}
TraceArgs& TraceArgs::Set(std::string_view key, int64_t value) {
  return Raw(key, std::to_string(value));
}
TraceArgs& TraceArgs::Set(std::string_view key, uint64_t value) {
  return Raw(key, std::to_string(value));
}
TraceArgs& TraceArgs::Set(std::string_view key, bool value) {
  return Raw(key, value ? "true" : "false");
}

std::string TraceArgs::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonQuote(fields_[i].first) + ": " + fields_[i].second;
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// TraceStream

std::string TraceStream::Header(char ph, double ts, int pid, int tid,
                                std::string_view name,
                                std::string_view cat) const {
  std::string out = "{\"ph\": \"";
  out += ph;
  out += "\", \"ts\": " + Micros(ts);
  out += ", \"pid\": " + std::to_string(pid_base_ + pid);
  out += ", \"tid\": " + std::to_string(tid);
  out += ", \"name\": " + JsonQuote(name);
  if (!cat.empty()) out += ", \"cat\": " + JsonQuote(cat);
  return out;
}

void TraceStream::ProcessName(int pid, std::string_view name) {
  std::string ev = "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " +
                   std::to_string(pid_base_ + pid) +
                   ", \"args\": {\"name\": " + JsonQuote(name) + "}}";
  Push(std::move(ev));
}

void TraceStream::ThreadName(int pid, int tid, std::string_view name) {
  std::string ev = "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " +
                   std::to_string(pid_base_ + pid) +
                   ", \"tid\": " + std::to_string(tid) +
                   ", \"args\": {\"name\": " + JsonQuote(name) + "}}";
  Push(std::move(ev));
}

void TraceStream::Complete(double ts, double dur, int pid, int tid,
                           std::string_view name, std::string_view cat,
                           const TraceArgs& args) {
  std::string ev = Header('X', ts, pid, tid, name, cat);
  ev += ", \"dur\": " + Micros(dur);
  if (!args.empty()) ev += ", \"args\": " + args.ToJson();
  ev += "}";
  Push(std::move(ev));
}

void TraceStream::AsyncBegin(double ts, uint64_t id, int pid,
                             std::string_view name, std::string_view cat,
                             const TraceArgs& args) {
  std::string ev = Header('b', ts, pid, 0, name, cat);
  ev += ", \"id\": " + std::to_string(id_base_ + id);
  if (!args.empty()) ev += ", \"args\": " + args.ToJson();
  ev += "}";
  Push(std::move(ev));
}

void TraceStream::AsyncEnd(double ts, uint64_t id, int pid,
                           std::string_view name, std::string_view cat,
                           const TraceArgs& args) {
  std::string ev = Header('e', ts, pid, 0, name, cat);
  ev += ", \"id\": " + std::to_string(id_base_ + id);
  if (!args.empty()) ev += ", \"args\": " + args.ToJson();
  ev += "}";
  Push(std::move(ev));
}

void TraceStream::Instant(double ts, int pid, int tid, std::string_view name,
                          std::string_view cat, const TraceArgs& args) {
  std::string ev = Header('i', ts, pid, tid, name, cat);
  ev += ", \"s\": \"t\"";
  if (!args.empty()) ev += ", \"args\": " + args.ToJson();
  ev += "}";
  Push(std::move(ev));
}

void TraceStream::Counter(double ts, int pid, std::string_view name,
                          std::string_view series, double value) {
  std::string ev = Header('C', ts, pid, 0, name, /*cat=*/"");
  ev += ", \"args\": {" + JsonQuote(series) + ": " + Number(value) + "}}";
  Push(std::move(ev));
}

// ---------------------------------------------------------------------------
// TraceRecorder

TraceRecorder::TraceRecorder() = default;
TraceRecorder::~TraceRecorder() = default;

TraceStream* TraceRecorder::NewStream(std::string_view label, int num_pids) {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_pids < 1) num_pids = 1;
  auto stream = std::unique_ptr<TraceStream>(
      new TraceStream(std::string(label), next_pid_base_, num_pids,
                      next_id_base_));
  next_pid_base_ += num_pids;
  // Generous id namespace per stream: a cell never opens 2^32 async spans.
  next_id_base_ += uint64_t{1} << 32;
  streams_.push_back(std::move(stream));
  return streams_.back().get();
}

size_t TraceRecorder::num_streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_.size();
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& s : streams_) n += s->num_events();
  return n;
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& stream : streams_) {
    for (const auto& event : stream->events_) {
      if (!first) out += ",\n";
      first = false;
      out += event;
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::string text = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace dmr::obs
