#include "obs/report.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace dmr::obs {

using json::JsonQuote;

namespace {

std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string Fixed(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void Pad(std::string* line, size_t width) {
  while (line->size() < width) line->push_back(' ');
}

}  // namespace

void Report::SetInfo(std::string_view key, std::string_view value) {
  info_.push_back(
      {std::string(key), std::string(value), JsonQuote(value)});
}

void Report::SetInfo(std::string_view key, int64_t value) {
  std::string s = std::to_string(value);
  info_.push_back({std::string(key), s, s});
}

void Report::SetInfo(std::string_view key, double value) {
  std::string s = Num(value);
  info_.push_back({std::string(key), Fixed(value), s});
}

void Report::SetSnapshot(MetricsRegistry::Snapshot snapshot) {
  snapshot_ = std::move(snapshot);
}

void Report::AddSeries(SeriesStats stats) {
  series_.push_back(std::move(stats));
}

void Report::AddJsonSection(std::string_view name, std::string json) {
  sections_.emplace_back(std::string(name), std::move(json));
}

std::string Report::ToText() const {
  std::string out;

  if (!info_.empty()) {
    out += "== run ==\n";
    size_t key_w = 0;
    for (const auto& e : info_) key_w = std::max(key_w, e.key.size());
    for (const auto& e : info_) {
      std::string line = "  " + e.key;
      Pad(&line, key_w + 4);
      out += line + e.text + "\n";
    }
  }

  if (!snapshot_.counters.empty()) {
    out += "== counters ==\n";
    size_t key_w = 0;
    for (const auto& [name, _] : snapshot_.counters) {
      key_w = std::max(key_w, name.size());
    }
    for (const auto& [name, value] : snapshot_.counters) {
      std::string line = "  " + name;
      Pad(&line, key_w + 4);
      out += line + std::to_string(value) + "\n";
    }
  }

  if (!snapshot_.gauges.empty()) {
    out += "== gauges ==\n";
    size_t key_w = 0;
    for (const auto& [name, _] : snapshot_.gauges) {
      key_w = std::max(key_w, name.size());
    }
    for (const auto& [name, value] : snapshot_.gauges) {
      std::string line = "  " + name;
      Pad(&line, key_w + 4);
      out += line + Fixed(value) + "\n";
    }
  }

  if (!snapshot_.histograms.empty()) {
    out += "== latency histograms ==\n";
    size_t key_w = 0;
    for (const auto& h : snapshot_.histograms) {
      key_w = std::max(key_w, h.name.size() + h.unit.size() + 3);
    }
    for (const auto& h : snapshot_.histograms) {
      std::string line = "  " + h.name + " (" + h.unit + ")";
      Pad(&line, key_w + 4);
      out += line + "count=" + std::to_string(h.count) +
             " mean=" + Fixed(h.mean) + " p50=" + Fixed(h.p50) +
             " p95=" + Fixed(h.p95) + " p99=" + Fixed(h.p99) +
             " max=" + Fixed(h.max) + "\n";
    }
  }

  if (!series_.empty()) {
    out += "== resource series ==\n";
    size_t key_w = 0;
    for (const auto& s : series_) key_w = std::max(key_w, s.name.size());
    for (const auto& s : series_) {
      std::string line = "  " + s.name;
      Pad(&line, key_w + 4);
      out += line + "n=" + std::to_string(s.count) +
             " mean=" + Fixed(s.mean) + " p50=" + Fixed(s.p50) +
             " p95=" + Fixed(s.p95) + " p99=" + Fixed(s.p99) +
             " max=" + Fixed(s.max) + "\n";
    }
  }

  // Raw JSON sections are only rendered in full by ToJson(); surface their
  // presence here so a text report never hides data silently.
  if (!sections_.empty()) {
    out += "== sections (see --metrics JSON) ==\n";
    size_t key_w = 0;
    for (const auto& [name, _] : sections_) {
      key_w = std::max(key_w, name.size());
    }
    for (const auto& [name, json] : sections_) {
      std::string line = "  " + name;
      Pad(&line, key_w + 4);
      out += line + std::to_string(json.size()) + " bytes\n";
    }
  }

  return out;
}

std::string Report::ToJson() const {
  std::string out = "{\n";

  out += "  \"info\": {";
  for (size_t i = 0; i < info_.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonQuote(info_[i].key) + ": " + info_[i].json;
  }
  out += "},\n";

  out += "  \"counters\": {";
  for (size_t i = 0; i < snapshot_.counters.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonQuote(snapshot_.counters[i].first) + ": " +
           std::to_string(snapshot_.counters[i].second);
  }
  out += "},\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < snapshot_.gauges.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonQuote(snapshot_.gauges[i].first) + ": " +
           Num(snapshot_.gauges[i].second);
  }
  out += "},\n";

  out += "  \"histograms\": [";
  for (size_t i = 0; i < snapshot_.histograms.size(); ++i) {
    const auto& h = snapshot_.histograms[i];
    if (i > 0) out += ",";
    out += "\n    {\"name\": " + JsonQuote(h.name) +
           ", \"unit\": " + JsonQuote(h.unit) +
           ", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + Num(h.sum) + ", \"min\": " + Num(h.min) +
           ", \"max\": " + Num(h.max) + ", \"mean\": " + Num(h.mean) +
           ", \"p50\": " + Num(h.p50) + ", \"p95\": " + Num(h.p95) +
           ", \"p99\": " + Num(h.p99) + "}";
  }
  out += snapshot_.histograms.empty() ? "],\n" : "\n  ],\n";

  out += "  \"series\": [";
  for (size_t i = 0; i < series_.size(); ++i) {
    const auto& s = series_[i];
    if (i > 0) out += ",";
    out += "\n    {\"name\": " + JsonQuote(s.name) +
           ", \"unit\": " + JsonQuote(s.unit) +
           ", \"count\": " + std::to_string(s.count) +
           ", \"mean\": " + Num(s.mean) + ", \"min\": " + Num(s.min) +
           ", \"max\": " + Num(s.max) + ", \"p50\": " + Num(s.p50) +
           ", \"p95\": " + Num(s.p95) + ", \"p99\": " + Num(s.p99) + "}";
  }
  out += series_.empty() ? "]" : "\n  ]";

  for (const auto& [name, value] : sections_) {
    out += ",\n  " + JsonQuote(name) + ": " + value;
  }
  out += "\n}\n";
  return out;
}

Status Report::WriteJson(const std::string& path) const {
  std::string text = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace dmr::obs
