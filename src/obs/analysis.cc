#include "obs/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace dmr::obs::analysis {

using json::JsonQuote;
using json::JsonValue;

namespace {

std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string Fixed(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

Result<std::string> SlurpFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read error on " + path);
  return text;
}

/// The annotation keys that form the join identity; everything else
/// ("repeat", "scale", "seed", ...) is deliberately aggregated over.
CellKey KeyOfCell(const std::string& driver, const JsonValue& cell) {
  CellKey key;
  key.driver = driver;
  std::string label = cell.StringOr("label", "");
  if (const JsonValue* ann = cell.Find("annotations")) {
    key.cell = ann->StringOr("cell", label);
    key.policy = ann->StringOr("policy", "");
    key.z = ann->StringOr("z", "");
  } else {
    key.cell = label;
  }
  return key;
}

}  // namespace

bool CellKey::operator<(const CellKey& other) const {
  if (driver != other.driver) return driver < other.driver;
  if (cell != other.cell) return cell < other.cell;
  if (policy != other.policy) return policy < other.policy;
  return z < other.z;
}

bool CellKey::operator==(const CellKey& other) const {
  return driver == other.driver && cell == other.cell &&
         policy == other.policy && z == other.z;
}

std::string CellKey::ToString() const {
  std::string out = driver;
  if (!cell.empty()) out += " cell=" + cell;
  if (!policy.empty()) out += " policy=" + policy;
  if (!z.empty()) out += " z=" + z;
  return out;
}

double CellAggregate::response_time() const {
  return jobs > 0 ? response_time_sum / jobs : 0.0;
}

double CellAggregate::wasted_pct() const {
  double busy = category_seconds[0] + category_seconds[1] +
                category_seconds[2];
  return busy > 0.0 ? 100.0 * category_seconds[1] / busy : 0.0;
}

double CellAggregate::utilization_pct() const {
  double busy = category_seconds[0] + category_seconds[1] +
                category_seconds[2];
  return total_slot_seconds > 0.0 ? 100.0 * busy / total_slot_seconds : 0.0;
}

double CellAggregate::makespan() const {
  return repeats > 0 ? makespan_sum / repeats : 0.0;
}

bool CellAggregate::MetricByName(std::string_view name, double* out) const {
  if (name == "response_time") {
    *out = response_time();
  } else if (name == "wasted_pct") {
    *out = wasted_pct();
  } else if (name == "utilization_pct") {
    *out = utilization_pct();
  } else if (name == "makespan") {
    *out = makespan();
  } else {
    return false;
  }
  return true;
}

const CellAggregate* RunData::FindCell(const CellKey& key) const {
  for (const CellAggregate& cell : cells) {
    if (cell.key == key) return &cell;
  }
  return nullptr;
}

Result<RunData> ParseReport(std::string_view json, std::string source) {
  DMR_ASSIGN_OR_RETURN(JsonValue doc, json::JsonParse(json));
  if (!doc.is_object()) {
    return Status::InvalidArgument(source + ": report is not a JSON object");
  }
  RunData run;
  run.source = std::move(source);
  if (const JsonValue* info = doc.Find("info")) {
    run.driver = info->StringOr("driver", "");
  }

  std::map<CellKey, CellAggregate> by_key;

  const JsonValue* ledger = doc.Find("ledger");
  if (ledger != nullptr) {
    const JsonValue* cells = ledger->Find("cells");
    if (cells == nullptr || !cells->is_array()) {
      return Status::InvalidArgument(run.source +
                                     ": ledger section without cells array");
    }
    for (const JsonValue& cell : cells->items) {
      CellKey key = KeyOfCell(run.driver, cell);
      CellAggregate& agg = by_key[key];
      agg.key = key;
      ++agg.repeats;
      agg.makespan_sum += cell.NumberOr("makespan", 0.0);
      agg.total_slot_seconds += cell.NumberOr("total_slot_seconds", 0.0);
      agg.delay_holds +=
          static_cast<int64_t>(cell.NumberOr("delay_holds", 0.0));
      const JsonValue* categories = cell.Find("categories");
      if (categories == nullptr || !categories->is_object()) {
        return Status::InvalidArgument(run.source + ": ledger cell " +
                                       key.ToString() +
                                       " lacks a categories object");
      }
      for (int c = 0; c < kNumSlotCategories; ++c) {
        const char* name = SlotCategoryName(static_cast<SlotCategory>(c));
        const JsonValue* v = categories->Find(name);
        if (v == nullptr || !v->is_number()) {
          return Status::InvalidArgument(run.source + ": ledger cell " +
                                         key.ToString() +
                                         " lacks category " + name);
        }
        agg.category_seconds[c] += v->number_value;
      }
    }
  }

  const JsonValue* critical = doc.Find("critical_path");
  if (critical != nullptr) {
    const JsonValue* cells = critical->Find("cells");
    if (cells == nullptr || !cells->is_array()) {
      return Status::InvalidArgument(
          run.source + ": critical_path section without cells array");
    }
    for (const JsonValue& cell : cells->items) {
      CellKey key = KeyOfCell(run.driver, cell);
      CellAggregate& agg = by_key[key];
      agg.key = key;
      const JsonValue* anal = cell.Find("analysis");
      const JsonValue* jobs =
          anal != nullptr ? anal->Find("jobs") : nullptr;
      if (jobs == nullptr || !jobs->is_array()) {
        return Status::InvalidArgument(run.source + ": critical_path cell " +
                                       key.ToString() +
                                       " lacks analysis.jobs");
      }
      for (const JsonValue& job : jobs->items) {
        ++agg.jobs;
        agg.response_time_sum += job.NumberOr("response_time", 0.0);
        agg.path_time_sum += job.NumberOr("path_time", 0.0);
        if (const JsonValue* breakdown = job.Find("breakdown")) {
          for (const auto& [cat, secs] : breakdown->members) {
            if (secs.is_number()) {
              agg.path_breakdown[cat] += secs.number_value;
            }
          }
        }
      }
    }
  }

  run.cells.reserve(by_key.size());
  for (auto& [key, agg] : by_key) run.cells.push_back(std::move(agg));
  return run;
}

Result<RunData> LoadReportFile(const std::string& path) {
  DMR_ASSIGN_OR_RETURN(std::string text, SlurpFile(path));
  return ParseReport(text, path);
}

namespace {

std::vector<CellKey> UnionOfKeys(const std::vector<RunData>& runs) {
  std::set<CellKey> keys;
  for (const RunData& run : runs) {
    for (const CellAggregate& cell : run.cells) keys.insert(cell.key);
  }
  return std::vector<CellKey>(keys.begin(), keys.end());
}

/// "execution 62% / queueing 21% / provider 17%" — the top categories of
/// the aggregate's critical-path composition.
std::string PathComposition(const CellAggregate& agg) {
  if (agg.path_time_sum <= 0.0 || agg.path_breakdown.empty()) return "-";
  std::vector<std::pair<std::string, double>> parts(
      agg.path_breakdown.begin(), agg.path_breakdown.end());
  std::sort(parts.begin(), parts.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  int shown = 0;
  for (const auto& [cat, secs] : parts) {
    double pct = 100.0 * secs / agg.path_time_sum;
    if (pct < 0.5 && shown > 0) break;
    if (shown > 0) out += " / ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %.0f%%", cat.c_str(), pct);
    out += buf;
    if (++shown == 3) break;
  }
  return out;
}

}  // namespace

std::string RenderComparisonMarkdown(const std::vector<RunData>& runs) {
  std::string out;
  out += "# dmr-analyze comparison\n\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    out += "- run " + std::to_string(i + 1) + ": `" + runs[i].source +
           "` (driver " + runs[i].driver + ")\n";
  }
  out += "\n| cell | policy | z | run | jobs | response time (s) | "
         "wasted work % | slot util % | makespan (s) | critical path |\n";
  out += "|---|---|---|---|---|---|---|---|---|---|\n";
  for (const CellKey& key : UnionOfKeys(runs)) {
    for (size_t i = 0; i < runs.size(); ++i) {
      const CellAggregate* agg = runs[i].FindCell(key);
      out += "| " + key.cell + " | " + key.policy + " | " + key.z + " | " +
             std::to_string(i + 1) + " | ";
      if (agg == nullptr) {
        out += "- | - | - | - | - | - |\n";
        continue;
      }
      out += std::to_string(agg->jobs) + " | " +
             Fixed(agg->response_time()) + " | " + Fixed(agg->wasted_pct()) +
             " | " + Fixed(agg->utilization_pct()) + " | " +
             Fixed(agg->makespan()) + " | " + PathComposition(*agg) +
             " |\n";
    }
  }
  return out;
}

std::string RenderComparisonJson(const std::vector<RunData>& runs) {
  std::string out = "{\n  \"runs\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"source\": " + JsonQuote(runs[i].source) + ", \"driver\": " +
           JsonQuote(runs[i].driver) + "}";
  }
  out += "],\n  \"cells\": [";
  bool first_cell = true;
  for (const CellKey& key : UnionOfKeys(runs)) {
    if (!first_cell) out += ",";
    first_cell = false;
    out += "\n    {\"driver\": " + JsonQuote(key.driver) + ", \"cell\": " +
           JsonQuote(key.cell) + ", \"policy\": " + JsonQuote(key.policy) +
           ", \"z\": " + JsonQuote(key.z) + ", \"runs\": [";
    for (size_t i = 0; i < runs.size(); ++i) {
      if (i > 0) out += ", ";
      const CellAggregate* agg = runs[i].FindCell(key);
      if (agg == nullptr) {
        out += "null";
        continue;
      }
      out += "{\"repeats\": " + std::to_string(agg->repeats) +
             ", \"jobs\": " + std::to_string(agg->jobs) +
             ", \"response_time\": " + Num(agg->response_time()) +
             ", \"wasted_pct\": " + Num(agg->wasted_pct()) +
             ", \"utilization_pct\": " + Num(agg->utilization_pct()) +
             ", \"makespan\": " + Num(agg->makespan()) +
             ", \"delay_holds\": " + std::to_string(agg->delay_holds) +
             ", \"categories\": {";
      for (int c = 0; c < kNumSlotCategories; ++c) {
        if (c > 0) out += ", ";
        out += std::string("\"") +
               SlotCategoryName(static_cast<SlotCategory>(c)) + "\": " +
               Num(agg->category_seconds[c]);
      }
      out += "}, \"path_breakdown\": {";
      bool first = true;
      for (const auto& [cat, secs] : agg->path_breakdown) {
        if (!first) out += ", ";
        first = false;
        out += JsonQuote(cat) + ": " + Num(secs);
      }
      out += "}}";
    }
    out += "]}";
  }
  out += first_cell ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

namespace {

struct Tolerance {
  double rel = 0.05;
  double abs = 1e-9;
};

Tolerance ToleranceFor(const JsonValue& baseline, const std::string& metric) {
  Tolerance tol;
  const JsonValue* tolerances = baseline.Find("tolerances");
  if (tolerances == nullptr) return tol;
  const JsonValue* entry = tolerances->Find(metric);
  if (entry == nullptr) return tol;
  if (entry->is_number()) {
    tol.rel = entry->number_value;
  } else if (entry->is_object()) {
    tol.rel = entry->NumberOr("rel", tol.rel);
    tol.abs = entry->NumberOr("abs", tol.abs);
  }
  return tol;
}

/// Resolves a baseline cell reference against the runs (first run with the
/// matching driver that has the cell wins).
const CellAggregate* ResolveCell(const std::vector<RunData>& runs,
                                 const std::string& driver,
                                 const JsonValue& ref) {
  for (const RunData& run : runs) {
    if (!driver.empty() && run.driver != driver) continue;
    CellKey key;
    key.driver = run.driver;
    key.cell = ref.StringOr("cell", "");
    key.policy = ref.StringOr("policy", "");
    key.z = ref.StringOr("z", "");
    if (const CellAggregate* agg = run.FindCell(key)) return agg;
  }
  return nullptr;
}

std::string DescribeRef(const std::string& driver, const JsonValue& ref) {
  CellKey key;
  key.driver = driver;
  key.cell = ref.StringOr("cell", "");
  key.policy = ref.StringOr("policy", "");
  key.z = ref.StringOr("z", "");
  return key.ToString();
}

}  // namespace

Result<BaselineReport> CheckBaseline(const JsonValue& baseline,
                                     const std::vector<RunData>& runs) {
  if (!baseline.is_object()) {
    return Status::InvalidArgument("baseline is not a JSON object");
  }
  BaselineReport report;
  std::string driver = baseline.StringOr("driver", "");
  if (!driver.empty()) {
    bool found = false;
    for (const RunData& run : runs) found |= run.driver == driver;
    if (!found) {
      report.failures.push_back("no input run has driver '" + driver + "'");
      return report;
    }
  }

  if (const JsonValue* entries = baseline.Find("entries")) {
    for (const JsonValue& entry : entries->items) {
      const CellAggregate* agg = ResolveCell(runs, driver, entry);
      if (agg == nullptr) {
        report.failures.push_back("baseline cell not found in any run: " +
                                  DescribeRef(driver, entry));
        continue;
      }
      const JsonValue* metrics = entry.Find("metrics");
      if (metrics == nullptr || !metrics->is_object()) continue;
      for (const auto& [name, base] : metrics->members) {
        if (!base.is_number()) continue;
        double actual = 0.0;
        if (!agg->MetricByName(name, &actual)) {
          report.notes.push_back("unknown baseline metric '" + name +
                                 "' ignored for " + agg->key.ToString());
          continue;
        }
        ++report.entries_checked;
        Tolerance tol = ToleranceFor(baseline, name);
        double budget = tol.abs + tol.rel * std::fabs(base.number_value);
        double delta = actual - base.number_value;
        if (std::fabs(delta) > budget) {
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "%s: %s = %.6g vs baseline %.6g (|delta| %.3g > "
                        "tolerance %.3g)",
                        agg->key.ToString().c_str(), name.c_str(), actual,
                        base.number_value, std::fabs(delta), budget);
          report.failures.push_back(buf);
        } else if (delta != 0.0) {
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "%s: %s drifted %.3g (within tolerance %.3g)",
                        agg->key.ToString().c_str(), name.c_str(), delta,
                        budget);
          report.notes.push_back(buf);
        }
      }
    }
  }

  if (const JsonValue* orderings = baseline.Find("orderings")) {
    for (const JsonValue& ordering : orderings->items) {
      std::string metric = ordering.StringOr("metric", "");
      const JsonValue* cells = ordering.Find("cells");
      if (metric.empty() || cells == nullptr || !cells->is_array() ||
          cells->items.size() < 2) {
        report.notes.push_back("skipping malformed ordering entry");
        continue;
      }
      ++report.orderings_checked;
      double prev = 0.0;
      std::string prev_desc;
      bool have_prev = false;
      for (const JsonValue& ref : cells->items) {
        const CellAggregate* agg = ResolveCell(runs, driver, ref);
        if (agg == nullptr) {
          report.failures.push_back("ordering cell not found: " +
                                    DescribeRef(driver, ref));
          have_prev = false;
          continue;
        }
        double value = 0.0;
        if (!agg->MetricByName(metric, &value)) {
          report.failures.push_back("ordering uses unknown metric '" +
                                    metric + "'");
          break;
        }
        if (have_prev && value + 1e-9 < prev) {
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "ordering violated for %s: %s (%.6g) < %s (%.6g)",
                        metric.c_str(), agg->key.ToString().c_str(), value,
                        prev_desc.c_str(), prev);
          report.failures.push_back(buf);
        }
        prev = value;
        prev_desc = agg->key.ToString();
        have_prev = true;
      }
    }
  }

  return report;
}

// ---------------------------------------------------------------------------
// Timeline documents.
// ---------------------------------------------------------------------------

namespace {

/// 8-level unicode sparkline over `values`, downsampled (bucket maxima) to
/// at most `max_chars` glyphs. Constant series render as the lowest bar.
std::string Sparkline(const std::vector<double>& values,
                      size_t max_chars = 32) {
  static const char* kLevels[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  if (values.empty()) return "-";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  size_t n = values.size();
  size_t buckets = std::min(max_chars, n);
  std::string out;
  for (size_t b = 0; b < buckets; ++b) {
    size_t begin = b * n / buckets;
    size_t end = (b + 1) * n / buckets;
    double v = values[begin];
    for (size_t i = begin + 1; i < end; ++i) v = std::max(v, values[i]);
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * 8.0);
      level = std::min(level, 7);
    }
    out += kLevels[level];
  }
  return out;
}

/// Folds one parsed probe-series object into the cell's aggregate.
Status MergeProbeSeries(const JsonValue& series, const std::string& source,
                        TimelineCellData* cell) {
  std::string name = series.StringOr("name", "");
  const JsonValue* points = series.Find("points");
  if (name.empty() || points == nullptr || !points->is_array()) {
    return Status::InvalidArgument(source + ": malformed probe series in " +
                                   cell->key.ToString());
  }
  TimelineSeriesStat& stat = cell->series[name];
  bool fresh = stat.name.empty();
  if (fresh) {
    stat.name = name;
    stat.unit = series.StringOr("unit", "");
    stat.kind = series.StringOr("kind", "gauge");
  }
  const JsonValue* summary = series.Find("summary");
  if (summary != nullptr && summary->is_object()) {
    // Whole-run stats (robust to ring eviction); points feed sparklines
    // only.
    auto ticks = static_cast<size_t>(summary->NumberOr("ticks", 0.0));
    double min = summary->NumberOr("min", 0.0);
    double max = summary->NumberOr("max", 0.0);
    double t_at_max = summary->NumberOr("t_at_max", 0.0);
    if (stat.points == 0) {
      stat.min = min;
      stat.max = max;
      stat.t_at_max = t_at_max;
    } else {
      stat.min = std::min(stat.min, min);
      if (max > stat.max) {
        stat.max = max;
        stat.t_at_max = t_at_max;
      }
    }
    stat.sum += summary->NumberOr("mean", 0.0) * static_cast<double>(ticks);
    stat.points += ticks;
    stat.last = summary->NumberOr("last", 0.0);
    if (fresh) {
      for (const JsonValue& point : points->items) {
        if (point.is_array() && point.items.size() >= 2) {
          stat.spark.push_back(point.items[1].number_value);
        }
      }
    }
    return Status::OK();
  }
  for (const JsonValue& point : points->items) {
    if (!point.is_array() || point.items.size() < 3 ||
        !point.items[0].is_number() || !point.items[1].is_number()) {
      return Status::InvalidArgument(source + ": malformed point in series " +
                                     name);
    }
    double t = point.items[0].number_value;
    double value = point.items[1].number_value;
    if (stat.points == 0) {
      stat.min = value;
      stat.max = value;
      stat.t_at_max = t;
    } else {
      stat.min = std::min(stat.min, value);
      if (value > stat.max) {
        stat.max = value;
        stat.t_at_max = t;
      }
    }
    ++stat.points;
    stat.sum += value;
    stat.last = value;
    if (fresh) stat.spark.push_back(value);
  }
  return Status::OK();
}

/// Folds one parsed windowed-series object into the cell's aggregate.
Status MergeWindowedSeries(const JsonValue& series, const std::string& source,
                           TimelineCellData* cell) {
  std::string name = series.StringOr("name", "");
  const JsonValue* windows = series.Find("windows");
  if (name.empty() || windows == nullptr || !windows->is_array()) {
    return Status::InvalidArgument(source + ": malformed windowed series in " +
                                   cell->key.ToString());
  }
  TimelineSeriesStat& stat = cell->series[name];
  bool fresh = stat.name.empty();
  if (fresh) {
    stat.name = name;
    stat.unit = series.StringOr("unit", "");
    stat.kind = "windowed";
  }
  for (const JsonValue& window : windows->items) {
    double w = window.NumberOr("window", 0.0);
    const JsonValue* points = window.Find("points");
    if (points == nullptr || !points->is_array()) {
      return Status::InvalidArgument(source + ": windowed series " + name +
                                     " lacks points");
    }
    TimelineWindowStat* wstat =
        const_cast<TimelineWindowStat*>(stat.FindWindow(w));
    if (wstat == nullptr) {
      stat.windows.emplace_back();
      wstat = &stat.windows.back();
      wstat->window = w;
    }
    bool fresh_window = wstat->spark.empty();
    const JsonValue* summary = window.Find("summary");
    if (summary != nullptr && summary->is_object()) {
      wstat->count = std::max(
          wstat->count,
          static_cast<uint64_t>(summary->NumberOr("count_max", 0.0)));
      wstat->p50_max =
          std::max(wstat->p50_max, summary->NumberOr("p50_max", 0.0));
      wstat->p90_max =
          std::max(wstat->p90_max, summary->NumberOr("p90_max", 0.0));
      wstat->p99_max =
          std::max(wstat->p99_max, summary->NumberOr("p99_max", 0.0));
      stat.points += points->items.size();
      if (fresh_window) {
        for (const JsonValue& point : points->items) {
          if (point.is_array() && point.items.size() >= 5) {
            wstat->spark.push_back(point.items[4].number_value);
          }
        }
      }
      continue;
    }
    for (const JsonValue& point : points->items) {
      if (!point.is_array() || point.items.size() < 5) {
        return Status::InvalidArgument(source +
                                       ": malformed windowed point in " +
                                       name);
      }
      double p50 = point.items[2].number_value;
      double p90 = point.items[3].number_value;
      double p99 = point.items[4].number_value;
      wstat->p50_max = std::max(wstat->p50_max, p50);
      wstat->p90_max = std::max(wstat->p90_max, p90);
      wstat->p99_max = std::max(wstat->p99_max, p99);
      ++stat.points;
      if (fresh_window) wstat->spark.push_back(p99);
    }
    if (!points->items.empty()) {
      const JsonValue& final_point = points->items.back();
      wstat->count = std::max(
          wstat->count,
          static_cast<uint64_t>(final_point.items[1].number_value));
    }
  }
  return Status::OK();
}

}  // namespace

bool TimelineWindowStat::MetricByName(std::string_view name,
                                      double* out) const {
  if (name == "count") {
    *out = static_cast<double>(count);
  } else if (name == "p50_max") {
    *out = p50_max;
  } else if (name == "p90_max") {
    *out = p90_max;
  } else if (name == "p99_max") {
    *out = p99_max;
  } else {
    return false;
  }
  return true;
}

bool TimelineSeriesStat::MetricByName(std::string_view name,
                                      double* out) const {
  if (name == "min") {
    *out = min;
  } else if (name == "max") {
    *out = max;
  } else if (name == "mean") {
    *out = mean();
  } else if (name == "last") {
    *out = last;
  } else {
    return false;
  }
  return true;
}

const TimelineWindowStat* TimelineSeriesStat::FindWindow(
    double window) const {
  for (const TimelineWindowStat& w : windows) {
    if (std::fabs(w.window - window) < 1e-9) return &w;
  }
  return nullptr;
}

const TimelineCellData* TimelineRunData::FindCell(const CellKey& key) const {
  for (const TimelineCellData& cell : cells) {
    if (cell.key == key) return &cell;
  }
  return nullptr;
}

Result<TimelineRunData> ParseTimeline(std::string_view json,
                                      std::string source) {
  DMR_ASSIGN_OR_RETURN(JsonValue doc, json::JsonParse(json));
  if (!doc.is_object()) {
    return Status::InvalidArgument(source +
                                   ": timeline doc is not a JSON object");
  }
  TimelineRunData run;
  run.source = std::move(source);
  run.driver = doc.StringOr("driver", "");
  const JsonValue* book = doc.Find("timeline");
  if (book == nullptr || !book->is_object()) {
    return Status::InvalidArgument(run.source +
                                   ": missing top-level timeline object");
  }
  run.interval = book->NumberOr("interval", 1.0);
  if (const JsonValue* windows = book->Find("windows")) {
    for (const JsonValue& w : windows->items) {
      if (w.is_number()) run.windows.push_back(w.number_value);
    }
  }
  const JsonValue* cells = book->Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return Status::InvalidArgument(run.source +
                                   ": timeline without cells array");
  }

  std::map<CellKey, TimelineCellData> by_key;
  for (const JsonValue& cell : cells->items) {
    CellKey key = KeyOfCell(run.driver, cell);
    TimelineCellData& agg = by_key[key];
    agg.key = key;
    ++agg.repeats;
    const JsonValue* timeline = cell.Find("timeline");
    if (timeline == nullptr || !timeline->is_object()) {
      return Status::InvalidArgument(run.source + ": cell " +
                                     key.ToString() +
                                     " lacks a timeline object");
    }
    agg.ticks += static_cast<size_t>(timeline->NumberOr("ticks", 0.0));
    agg.dropped_ticks +=
        static_cast<uint64_t>(timeline->NumberOr("dropped_ticks", 0.0));
    if (const JsonValue* series = timeline->Find("series")) {
      for (const JsonValue& s : series->items) {
        DMR_RETURN_NOT_OK(MergeProbeSeries(s, run.source, &agg));
      }
    }
    if (const JsonValue* windowed = timeline->Find("windowed")) {
      for (const JsonValue& s : windowed->items) {
        DMR_RETURN_NOT_OK(MergeWindowedSeries(s, run.source, &agg));
      }
    }
    if (const JsonValue* slo = cell.Find("slo")) {
      if (const JsonValue* breaches = slo->Find("breaches")) {
        agg.slo_breaches += static_cast<int>(breaches->items.size());
      }
    }
  }

  run.cells.reserve(by_key.size());
  for (auto& [key, agg] : by_key) run.cells.push_back(std::move(agg));
  return run;
}

Result<TimelineRunData> LoadTimelineFile(const std::string& path) {
  DMR_ASSIGN_OR_RETURN(std::string text, SlurpFile(path));
  return ParseTimeline(text, path);
}

namespace {

std::vector<CellKey> UnionOfTimelineKeys(
    const std::vector<TimelineRunData>& runs) {
  std::set<CellKey> keys;
  for (const TimelineRunData& run : runs) {
    for (const TimelineCellData& cell : run.cells) keys.insert(cell.key);
  }
  return std::vector<CellKey>(keys.begin(), keys.end());
}

}  // namespace

std::string RenderTimelineMarkdown(
    const std::vector<TimelineRunData>& runs) {
  std::string out;
  out += "# dmr-analyze timeline\n\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    out += "- run " + std::to_string(i + 1) + ": `" + runs[i].source +
           "` (driver " + runs[i].driver + ", interval " +
           Fixed(runs[i].interval) + "s)\n";
  }
  for (const CellKey& key : UnionOfTimelineKeys(runs)) {
    out += "\n## " + key.ToString() + "\n\n";

    // Probe (gauge/counter) series: extrema table with sparklines.
    out += "| series | kind | run | points | min | mean | max | t@max | "
           "last | spark |\n";
    out += "|---|---|---|---|---|---|---|---|---|---|\n";
    for (size_t i = 0; i < runs.size(); ++i) {
      const TimelineCellData* cell = runs[i].FindCell(key);
      if (cell == nullptr) continue;
      for (const auto& [name, stat] : cell->series) {
        if (stat.kind == "windowed") continue;
        out += "| " + name + " | " + stat.kind + " | " +
               std::to_string(i + 1) + " | " + std::to_string(stat.points) +
               " | " + Fixed(stat.min) + " | " + Fixed(stat.mean()) + " | " +
               Fixed(stat.max) + " | " + Fixed(stat.t_at_max) + " | " +
               Fixed(stat.last) + " | " + Sparkline(stat.spark) + " |\n";
      }
    }

    // Windowed percentile series: one row per (series, window, run).
    out += "\n| series | window (s) | run | count | p50 max | p90 max | "
           "p99 max | spark(p99) |\n";
    out += "|---|---|---|---|---|---|---|---|\n";
    for (size_t i = 0; i < runs.size(); ++i) {
      const TimelineCellData* cell = runs[i].FindCell(key);
      if (cell == nullptr) continue;
      for (const auto& [name, stat] : cell->series) {
        if (stat.kind != "windowed") continue;
        for (const TimelineWindowStat& w : stat.windows) {
          out += "| " + name + " | " + Fixed(w.window) + " | " +
                 std::to_string(i + 1) + " | " + std::to_string(w.count) +
                 " | " + Fixed(w.p50_max) + " | " + Fixed(w.p90_max) +
                 " | " + Fixed(w.p99_max) + " | " + Sparkline(w.spark) +
                 " |\n";
        }
      }
    }

    out += "\n";
    for (size_t i = 0; i < runs.size(); ++i) {
      const TimelineCellData* cell = runs[i].FindCell(key);
      if (cell == nullptr) {
        out += "- run " + std::to_string(i + 1) + ": cell missing\n";
        continue;
      }
      out += "- run " + std::to_string(i + 1) + ": " +
             std::to_string(cell->repeats) + " repeat(s), " +
             std::to_string(cell->ticks) + " tick(s), " +
             std::to_string(cell->dropped_ticks) + " dropped, " +
             std::to_string(cell->slo_breaches) + " SLO breach(es)\n";
    }
  }
  return out;
}

namespace {

const TimelineCellData* ResolveTimelineCell(
    const std::vector<TimelineRunData>& runs, const std::string& driver,
    const JsonValue& ref) {
  for (const TimelineRunData& run : runs) {
    if (!driver.empty() && run.driver != driver) continue;
    CellKey key;
    key.driver = run.driver;
    key.cell = ref.StringOr("cell", "");
    key.policy = ref.StringOr("policy", "");
    key.z = ref.StringOr("z", "");
    if (const TimelineCellData* cell = run.FindCell(key)) return cell;
  }
  return nullptr;
}

}  // namespace

Result<BaselineReport> CheckTimelineBaseline(
    const JsonValue& baseline, const std::vector<TimelineRunData>& runs) {
  if (!baseline.is_object()) {
    return Status::InvalidArgument("timeline baseline is not a JSON object");
  }
  BaselineReport report;
  std::string driver = baseline.StringOr("driver", "");
  if (!driver.empty()) {
    bool found = false;
    for (const TimelineRunData& run : runs) found |= run.driver == driver;
    if (!found) {
      report.failures.push_back("no input timeline has driver '" + driver +
                                "'");
      return report;
    }
  }

  const JsonValue* entries = baseline.Find("entries");
  if (entries == nullptr || !entries->is_array()) return report;
  for (const JsonValue& entry : entries->items) {
    const TimelineCellData* cell = ResolveTimelineCell(runs, driver, entry);
    if (cell == nullptr) {
      report.failures.push_back("baseline timeline cell not found: " +
                                DescribeRef(driver, entry));
      continue;
    }
    const JsonValue* series_list = entry.Find("series");
    if (series_list == nullptr || !series_list->is_array()) continue;
    for (const JsonValue& sref : series_list->items) {
      std::string name = sref.StringOr("name", "");
      auto it = cell->series.find(name);
      if (it == cell->series.end()) {
        report.failures.push_back("baseline series '" + name +
                                  "' not found in " + cell->key.ToString());
        continue;
      }
      const TimelineSeriesStat& stat = it->second;
      const JsonValue* window_ref = sref.Find("window");
      const TimelineWindowStat* wstat = nullptr;
      std::string band = name;
      if (window_ref != nullptr && window_ref->is_number()) {
        wstat = stat.FindWindow(window_ref->number_value);
        band += "@w" + Fixed(window_ref->number_value);
        if (wstat == nullptr) {
          report.failures.push_back("baseline window band " + band +
                                    " not found in " + cell->key.ToString());
          continue;
        }
      }
      const JsonValue* metrics = sref.Find("metrics");
      if (metrics == nullptr || !metrics->is_object()) continue;
      for (const auto& [metric, base] : metrics->members) {
        if (!base.is_number()) continue;
        double actual = 0.0;
        bool known = wstat != nullptr ? wstat->MetricByName(metric, &actual)
                                      : stat.MetricByName(metric, &actual);
        if (!known) {
          report.notes.push_back("unknown timeline metric '" + metric +
                                 "' ignored for " + band + " in " +
                                 cell->key.ToString());
          continue;
        }
        ++report.entries_checked;
        Tolerance tol = ToleranceFor(baseline, metric);
        double budget = tol.abs + tol.rel * std::fabs(base.number_value);
        double delta = actual - base.number_value;
        if (std::fabs(delta) > budget) {
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "%s: %s %s = %.6g vs baseline %.6g (|delta| %.3g > "
                        "tolerance %.3g)",
                        cell->key.ToString().c_str(), band.c_str(),
                        metric.c_str(), actual, base.number_value,
                        std::fabs(delta), budget);
          report.failures.push_back(buf);
        } else if (delta != 0.0) {
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "%s: %s %s drifted %.3g (within tolerance %.3g)",
                        cell->key.ToString().c_str(), band.c_str(),
                        metric.c_str(), delta, budget);
          report.notes.push_back(buf);
        }
      }
    }
  }
  return report;
}

std::string EmitTimelineBaseline(const std::vector<TimelineRunData>& runs,
                                 double default_rel_tolerance) {
  std::string driver;
  for (const TimelineRunData& run : runs) {
    if (!run.driver.empty()) {
      driver = run.driver;
      break;
    }
  }
  std::string rel = Num(default_rel_tolerance);
  std::string out = "{\n  \"kind\": \"timeline\",\n  \"driver\": " +
                    JsonQuote(driver) + ",\n";
  out += "  \"tolerances\": {\"min\": " + rel + ", \"max\": " + rel +
         ", \"mean\": " + rel + ", \"last\": " + rel +
         ", \"count\": {\"rel\": " + rel +
         ", \"abs\": 2}, \"p50_max\": " + rel + ", \"p90_max\": " + rel +
         ", \"p99_max\": " + rel + "},\n";
  out += "  \"entries\": [";
  bool first = true;
  std::set<CellKey> seen;
  for (const TimelineRunData& run : runs) {
    for (const TimelineCellData& cell : run.cells) {
      if (!seen.insert(cell.key).second) continue;  // first run wins
      if (!first) out += ",";
      first = false;
      out += "\n    {\"cell\": " + JsonQuote(cell.key.cell) +
             ", \"policy\": " + JsonQuote(cell.key.policy) + ", \"z\": " +
             JsonQuote(cell.key.z) + ",\n     \"series\": [";
      bool first_series = true;
      for (const auto& [name, stat] : cell.series) {
        if (stat.kind == "windowed") {
          for (const TimelineWindowStat& w : stat.windows) {
            if (!first_series) out += ",";
            first_series = false;
            out += "\n      {\"name\": " + JsonQuote(name) +
                   ", \"window\": " + Num(w.window) + ", \"metrics\": {" +
                   "\"count\": " + std::to_string(w.count) +
                   ", \"p50_max\": " + Num(w.p50_max) + ", \"p90_max\": " +
                   Num(w.p90_max) + ", \"p99_max\": " + Num(w.p99_max) +
                   "}}";
          }
        } else {
          if (!first_series) out += ",";
          first_series = false;
          out += "\n      {\"name\": " + JsonQuote(name) +
                 ", \"metrics\": {\"min\": " + Num(stat.min) +
                 ", \"max\": " + Num(stat.max) + ", \"mean\": " +
                 Num(stat.mean()) + ", \"last\": " + Num(stat.last) + "}}";
        }
      }
      out += first_series ? "]}" : "\n     ]}";
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string EmitBaseline(const std::vector<RunData>& runs,
                         double default_rel_tolerance) {
  std::string driver;
  for (const RunData& run : runs) {
    if (!run.driver.empty()) {
      driver = run.driver;
      break;
    }
  }
  std::string out = "{\n  \"driver\": " + JsonQuote(driver) + ",\n";
  out += "  \"tolerances\": {\"response_time\": " +
         Num(default_rel_tolerance) + ", \"wasted_pct\": {\"rel\": " +
         Num(default_rel_tolerance) + ", \"abs\": 0.5}, "
         "\"utilization_pct\": {\"rel\": " + Num(default_rel_tolerance) +
         ", \"abs\": 0.5}, \"makespan\": " + Num(default_rel_tolerance) +
         "},\n";
  out += "  \"entries\": [";
  bool first = true;
  std::set<CellKey> seen;
  for (const RunData& run : runs) {
    for (const CellAggregate& agg : run.cells) {
      if (!seen.insert(agg.key).second) continue;  // first run wins
      if (!first) out += ",";
      first = false;
      out += "\n    {\"cell\": " + JsonQuote(agg.key.cell) +
             ", \"policy\": " + JsonQuote(agg.key.policy) + ", \"z\": " +
             JsonQuote(agg.key.z) + ",\n     \"metrics\": {" +
             "\"response_time\": " + Num(agg.response_time()) +
             ", \"wasted_pct\": " + Num(agg.wasted_pct()) +
             ", \"utilization_pct\": " + Num(agg.utilization_pct()) +
             ", \"makespan\": " + Num(agg.makespan()) + "}}";
    }
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"orderings\": []\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Profile documents (the "prof" report section of --profile runs).
// ---------------------------------------------------------------------------

namespace {

uint64_t U64Or(const JsonValue& obj, const char* key) {
  return static_cast<uint64_t>(obj.NumberOr(key, 0.0));
}

std::string U64(uint64_t value) { return std::to_string(value); }

/// First run (driver-matching when `driver` is set) that has the phase.
const ProfilePhaseStat* ResolvePhase(const std::vector<ProfileRunData>& runs,
                                     const std::string& driver,
                                     const std::string& path) {
  for (const ProfileRunData& run : runs) {
    if (!driver.empty() && run.driver != driver) continue;
    if (const ProfilePhaseStat* phase = run.FindPhase(path)) return phase;
  }
  return nullptr;
}

}  // namespace

bool ProfilePhaseStat::MetricByName(std::string_view name,
                                    double* out) const {
  if (name == "count") {
    *out = static_cast<double>(count);
  } else if (name == "total_ms") {
    *out = total_ms();
  } else if (name == "self_ms") {
    *out = self_ms();
  } else if (name == "min_us") {
    *out = static_cast<double>(min_ns) / 1e3;
  } else if (name == "max_us") {
    *out = static_cast<double>(max_ns) / 1e3;
  } else {
    return false;
  }
  return true;
}

const ProfilePhaseStat* ProfileRunData::FindPhase(
    std::string_view path) const {
  for (const ProfilePhaseStat& phase : phases) {
    if (phase.path == path) return &phase;
  }
  return nullptr;
}

Result<ProfileRunData> ParseProfile(std::string_view json,
                                    std::string source) {
  DMR_ASSIGN_OR_RETURN(JsonValue doc, json::JsonParse(json));
  if (!doc.is_object()) {
    return Status::InvalidArgument(source + ": report is not a JSON object");
  }
  ProfileRunData run;
  run.source = std::move(source);
  if (const JsonValue* info = doc.Find("info")) {
    run.driver = info->StringOr("driver", "");
  }
  const JsonValue* prof = doc.Find("prof");
  if (prof == nullptr || !prof->is_object()) {
    return Status::InvalidArgument(
        run.source + ": no prof section (was the run profiled? pass "
                     "--profile=FILE to the bench driver)");
  }
  run.calibration_ns = prof->NumberOr("calibration_ns", 0.0);
  run.threads = static_cast<int>(prof->NumberOr("threads", 0.0));
  run.imbalances = static_cast<int>(prof->NumberOr("imbalances", 0.0));
  const JsonValue* phases = prof->Find("phases");
  if (phases == nullptr || !phases->is_array()) {
    return Status::InvalidArgument(run.source +
                                   ": prof section without phases array");
  }
  for (const JsonValue& entry : phases->items) {
    ProfilePhaseStat phase;
    phase.path = entry.StringOr("path", "");
    if (phase.path.empty()) {
      return Status::InvalidArgument(run.source +
                                     ": prof phase without a path");
    }
    phase.count = U64Or(entry, "count");
    phase.total_ns = U64Or(entry, "total_ns");
    phase.self_ns = U64Or(entry, "self_ns");
    phase.min_ns = U64Or(entry, "min_ns");
    phase.max_ns = U64Or(entry, "max_ns");
    if (phase.self_ns > phase.total_ns) {
      return Status::InvalidArgument(run.source + ": prof phase " +
                                     phase.path + " has self > total");
    }
    run.phases.push_back(std::move(phase));
  }
  if (const JsonValue* alloc = prof->Find("alloc")) {
    for (const JsonValue& entry : alloc->items) {
      ProfileAllocStat stat;
      stat.site = entry.StringOr("site", "");
      stat.count = U64Or(entry, "count");
      stat.bytes = U64Or(entry, "bytes");
      run.alloc.push_back(std::move(stat));
    }
  }
  return run;
}

Result<ProfileRunData> LoadProfileFile(const std::string& path) {
  DMR_ASSIGN_OR_RETURN(std::string text, SlurpFile(path));
  return ParseProfile(text, path);
}

std::string RenderProfileMarkdown(const std::vector<ProfileRunData>& runs,
                                  size_t top_n) {
  std::string out = "# Host profile\n";
  for (const ProfileRunData& run : runs) {
    out += "\n## " + (run.driver.empty() ? std::string("<no driver>")
                                         : run.driver) +
           " (" + run.source + ")\n\n";
    out += "threads merged: " + std::to_string(run.threads) +
           " · imbalances: " + std::to_string(run.imbalances) +
           " · calibration: " + Fixed(run.calibration_ns) + " ns/frame\n\n";
    uint64_t self_total = 0;
    for (const ProfilePhaseStat& phase : run.phases) {
      self_total += phase.self_ns;
    }
    std::vector<const ProfilePhaseStat*> ranked;
    ranked.reserve(run.phases.size());
    for (const ProfilePhaseStat& phase : run.phases) ranked.push_back(&phase);
    std::sort(ranked.begin(), ranked.end(),
              [](const ProfilePhaseStat* a, const ProfilePhaseStat* b) {
                if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
                return a->path < b->path;
              });
    if (ranked.size() > top_n) ranked.resize(top_n);
    out += "| phase | count | total ms | self ms | self % | min µs | "
           "max µs |\n";
    out += "|---|---:|---:|---:|---:|---:|---:|\n";
    for (const ProfilePhaseStat* phase : ranked) {
      double pct = self_total > 0
                       ? 100.0 * static_cast<double>(phase->self_ns) /
                             static_cast<double>(self_total)
                       : 0.0;
      out += "| " + phase->path + " | " + U64(phase->count) + " | " +
             Fixed(phase->total_ms()) + " | " + Fixed(phase->self_ms()) +
             " | " + Fixed(pct) + " | " +
             Fixed(static_cast<double>(phase->min_ns) / 1e3) + " | " +
             Fixed(static_cast<double>(phase->max_ns) / 1e3) + " |\n";
    }
    if (run.phases.size() > top_n) {
      out += "\n(" + std::to_string(run.phases.size() - top_n) +
             " more phases below the top-" + std::to_string(top_n) +
             " self-time cut)\n";
    }
    if (!run.alloc.empty()) {
      out += "\n### Allocation accounting\n\n";
      out += "| site | count | bytes |\n|---|---:|---:|\n";
      for (const ProfileAllocStat& stat : run.alloc) {
        out += "| " + stat.site + " | " + U64(stat.count) + " | " +
               U64(stat.bytes) + " |\n";
      }
    }
  }
  if (runs.size() >= 2) {
    // Cross-run comparison matrix: self time per phase, all runs side by
    // side, over the union of paths (sorted, so the matrix is stable).
    std::set<std::string> paths;
    for (const ProfileRunData& run : runs) {
      for (const ProfilePhaseStat& phase : run.phases) {
        paths.insert(phase.path);
      }
    }
    out += "\n## Cross-run self time (ms)\n\n| phase |";
    for (size_t i = 0; i < runs.size(); ++i) {
      out += " run" + std::to_string(i) + " |";
    }
    out += "\n|---|";
    for (size_t i = 0; i < runs.size(); ++i) out += "---:|";
    out += "\n";
    for (const std::string& path : paths) {
      out += "| " + path + " |";
      for (const ProfileRunData& run : runs) {
        const ProfilePhaseStat* phase = run.FindPhase(path);
        out += phase != nullptr ? " " + Fixed(phase->self_ms()) + " |"
                                : " - |";
      }
      out += "\n";
    }
    out += "\n";
    for (size_t i = 0; i < runs.size(); ++i) {
      out += "run" + std::to_string(i) + ": " + runs[i].source + "\n";
    }
  }
  return out;
}

std::string RenderProfileCollapsed(const ProfileRunData& run) {
  std::vector<const ProfilePhaseStat*> ordered;
  ordered.reserve(run.phases.size());
  for (const ProfilePhaseStat& phase : run.phases) ordered.push_back(&phase);
  std::sort(ordered.begin(), ordered.end(),
            [](const ProfilePhaseStat* a, const ProfilePhaseStat* b) {
              return a->path < b->path;
            });
  std::string out;
  for (const ProfilePhaseStat* phase : ordered) {
    out += phase->path;
    out += ' ';
    out += U64(phase->self_ns);
    out += '\n';
  }
  return out;
}

Result<BaselineReport> CheckProfileBaseline(
    const JsonValue& baseline, const std::vector<ProfileRunData>& runs) {
  if (!baseline.is_object()) {
    return Status::InvalidArgument("baseline is not a JSON object");
  }
  BaselineReport report;
  std::string driver = baseline.StringOr("driver", "");
  if (!driver.empty()) {
    bool found = false;
    for (const ProfileRunData& run : runs) found |= run.driver == driver;
    if (!found) {
      report.failures.push_back("no input run has driver '" + driver + "'");
      return report;
    }
  }
  if (const JsonValue* balanced = baseline.Find("require_balanced")) {
    if (balanced->bool_value) {
      for (const ProfileRunData& run : runs) {
        if (!driver.empty() && run.driver != driver) continue;
        ++report.entries_checked;
        if (run.imbalances != 0) {
          report.failures.push_back(
              run.source + ": timer-stack imbalances = " +
              std::to_string(run.imbalances) + " (expected 0)");
        }
      }
    }
  }
  const JsonValue* entries = baseline.Find("entries");
  if (entries == nullptr || !entries->is_array()) return report;
  for (const JsonValue& entry : entries->items) {
    std::string path = entry.StringOr("path", "");
    const ProfilePhaseStat* phase = ResolvePhase(runs, driver, path);
    if (phase == nullptr) {
      report.failures.push_back("baseline phase not found in any run: " +
                                path);
      continue;
    }
    const JsonValue* metrics = entry.Find("metrics");
    if (metrics == nullptr || !metrics->is_object()) continue;
    for (const auto& [name, base] : metrics->members) {
      if (!base.is_number()) continue;
      double actual = 0.0;
      if (!phase->MetricByName(name, &actual)) {
        report.notes.push_back("unknown profile metric '" + name +
                               "' ignored for " + path);
        continue;
      }
      ++report.entries_checked;
      Tolerance tol = ToleranceFor(baseline, name);
      double budget = tol.abs + tol.rel * std::fabs(base.number_value);
      double delta = actual - base.number_value;
      if (std::fabs(delta) > budget) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s: %s = %.6g vs baseline %.6g (|delta| %.3g > "
                      "tolerance %.3g)",
                      path.c_str(), name.c_str(), actual, base.number_value,
                      std::fabs(delta), budget);
        report.failures.push_back(buf);
      } else if (delta != 0.0) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s: %s drifted %.3g (within tolerance %.3g)",
                      path.c_str(), name.c_str(), delta, budget);
        report.notes.push_back(buf);
      }
    }
  }
  return report;
}

std::string EmitProfileBaseline(const std::vector<ProfileRunData>& runs,
                                double default_rel_tolerance) {
  std::string driver;
  for (const ProfileRunData& run : runs) {
    if (!run.driver.empty()) {
      driver = run.driver;
      break;
    }
  }
  std::string out = "{\n  \"kind\": \"profile\",\n  \"driver\": " +
                    JsonQuote(driver) + ",\n";
  out += "  \"require_balanced\": true,\n";
  out += "  \"tolerances\": {\"count\": {\"rel\": " +
         Num(default_rel_tolerance) + ", \"abs\": 2}},\n";
  out += "  \"entries\": [";
  bool first = true;
  std::set<std::string> seen;
  for (const ProfileRunData& run : runs) {
    for (const ProfilePhaseStat& phase : run.phases) {
      if (!seen.insert(phase.path).second) continue;  // first run wins
      if (!first) out += ",";
      first = false;
      out += "\n    {\"path\": " + JsonQuote(phase.path) +
             ", \"metrics\": {\"count\": " + U64(phase.count) + "}}";
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace dmr::obs::analysis
