#ifndef DMR_OBS_TIMELINE_H_
#define DMR_OBS_TIMELINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "sim/arena.h"

namespace dmr::obs {

/// Configuration for one timeline cell. Every knob is in *virtual*
/// seconds/ticks — the timeline never reads the host clock, which is what
/// makes its output byte-identical across --threads/--queue/--shuffle-ties
/// (DESIGN.md §15).
struct TimelineOptions {
  /// Sampling cadence in simulated seconds.
  double interval = 1.0;
  /// Sliding windows (in simulated seconds) for percentile series. Each
  /// is rounded up to a whole number of ticks.
  std::vector<double> windows = {10.0, 60.0};
  /// Ring capacity: retain at most this many ticks per series; older
  /// ticks are evicted (counted in dropped_ticks).
  size_t max_ticks = 256;
  /// Flight-recorder ring capacity for the owning cell.
  size_t flight_capacity = 128;
};

/// \brief A virtual-time sampler: polls registered probes and closes
/// sliding-percentile windows on a fixed simulated cadence.
///
/// Two series families:
///  * **Probe series** (AddProbe): a `double()` callback polled once per
///    tick; each point records (t, value, rate) where rate is the delta
///    per simulated second since the previous tick — for kCounter probes
///    the interesting number, for kGauge probes a first derivative.
///  * **Windowed series** (AddWindowed): hot-path `Observe(id, value)`
///    calls are bucketed with HistogramData's HDR bucket map into a
///    per-tick sparse delta; at each tick every configured window rolls
///    forward (add the newest tick's buckets, retire the departing
///    tick's) and records (t, count, p50, p90, p99) by one scan of the
///    dense window counts. Cost per tick is O(observed distinct buckets +
///    window scan), independent of window length.
///
/// Determinism: ticks are driven by kBookkeeping simulation events
/// scheduled by the owner (Testbed) and every probe/observation is a pure
/// function of virtual-time state, so the emitted JSON is byte-identical
/// across thread counts, queue kinds and tie-shuffle seeds. Emission
/// iterates series sorted by name.
///
/// Threading: one Timeline belongs to one experiment cell; all calls
/// (registration, Observe, Sample, ToJson) come from that cell's
/// simulation thread or the driver's quiescent setup/teardown edges —
/// the same single-writer contract the Ledger uses.
class Timeline {
 public:
  enum class SeriesKind { kGauge, kCounter };

  struct WindowedId {
    uint32_t index = UINT32_MAX;
    bool valid() const { return index != UINT32_MAX; }
  };

  explicit Timeline(const TimelineOptions& options = TimelineOptions());
  ~Timeline();

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  const TimelineOptions& options() const { return options_; }

  /// Registers a probe polled once per tick. Dedupes by name (the
  /// existing kind/unit/fn win, matching MetricsRegistry's contract).
  void AddProbe(std::string_view name, std::string_view unit,
                SeriesKind kind, std::function<double()> fn);

  /// Registers a windowed (sliding-percentile) series; dedupes by name.
  WindowedId AddWindowed(std::string_view name, std::string_view unit);

  /// Hot path: records one observation into the current tick. A handful
  /// of arithmetic ops + an amortized push_back; no map lookups.
  void Observe(WindowedId id, double value);

  /// Closes the tick at virtual time `now`: polls every probe, rolls
  /// every window, appends one point per series. `now` must be strictly
  /// greater than the previous tick time.
  void Sample(double now);

  /// Latest closed value of windowed percentile `q` (50/90/99) over
  /// `window` simulated seconds. False when the series/window is unknown
  /// or no tick has closed yet.
  bool LatestWindowStat(std::string_view series, double window, double q,
                        double* out) const;

  /// Latest polled value of a probe series; false when unknown/no tick.
  bool LatestProbeValue(std::string_view series, double* out) const;

  /// Marks the end of the run; ToJson refuses unsealed timelines the
  /// same way LedgerBook skips unsealed cells.
  void Seal(double now);
  bool sealed() const { return sealed_; }

  size_t ticks() const { return ticks_; }
  uint64_t dropped_ticks() const { return dropped_ticks_; }

  /// JSON object with "series" and "windowed" arrays, each sorted by
  /// series name. Points are compact arrays:
  ///   probe point:    [t, value, rate]
  ///   windowed point: [t, count, p50, p90, p99]
  /// Each series also carries a whole-run "summary" object (probe:
  /// ticks/min/max/mean/last/t_at_max; per window: count_max and
  /// p50/p90/p99 maxima) accumulated across *every* closed tick — the
  /// ring keeps only the last max_ticks points, so `dmr-analyze
  /// timeline` regression bands key on the summaries, not the points.
  std::string ToJson() const;

 private:
  struct ProbeSeries;
  struct WindowState;
  struct WindowedSeries;

  TimelineOptions options_;
  std::vector<size_t> window_ticks_;  // per options_.windows entry

  std::vector<std::unique_ptr<ProbeSeries>> probes_;
  std::vector<std::unique_ptr<WindowedSeries>> windowed_;

  double last_tick_time_ = 0.0;
  size_t ticks_ = 0;
  uint64_t dropped_ticks_ = 0;
  double sealed_at_ = 0.0;
  bool sealed_ = false;
};

/// \brief One experiment cell's timeline state: the sampler, its
/// arena-backed flight recorder, and the SLO monitor, plus the
/// driver-provided annotations that key cross-run joins in
/// `dmr-analyze timeline`.
struct TimelineCell {
  TimelineCell(std::string label_in, const TimelineOptions& options);
  ~TimelineCell();

  TimelineCell(const TimelineCell&) = delete;
  TimelineCell& operator=(const TimelineCell&) = delete;

  std::string label;
  std::map<std::string, std::string> annotations;
  /// Declared before `flight` — the recorder's ring is carved from it.
  sim::Arena arena;
  Timeline timeline;
  FlightRecorder flight;
  SloMonitor slo;
};

/// \brief The driver-lifetime collection of TimelineCells, mirroring
/// LedgerBook: Testbeds open a cell each via Hub, the ObsSession renders
/// the whole book at teardown. NewCell is thread-safe (parallel cells);
/// emission sorts cells by annotations then label so output is stable
/// under --threads=N.
class TimelineBook {
 public:
  explicit TimelineBook(const TimelineOptions& options = TimelineOptions());
  ~TimelineBook();

  TimelineBook(const TimelineBook&) = delete;
  TimelineBook& operator=(const TimelineBook&) = delete;

  const TimelineOptions& options() const { return options_; }

  TimelineCell* NewCell(std::string_view label);

  /// Cells sorted by (annotations, label); see LedgerBook::SortedCells.
  std::vector<const TimelineCell*> SortedCells() const;

  /// {"interval":.., "windows":[..], "cells":[{label, annotations,
  /// ticks, series, windowed, slo, flight_recorder}, ...]} — unsealed
  /// cells are skipped; cell labels are re-issued in sorted order so the
  /// text is independent of construction order.
  std::string ToJson() const;

  /// Dumps every cell's flight recorder (sorted order) — the
  /// --dump-flight-recorder path.
  void DumpFlightRecorders(std::FILE* out) const;

 private:
  TimelineOptions options_;
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<TimelineCell>> cells_;
};

}  // namespace dmr::obs

#endif  // DMR_OBS_TIMELINE_H_
