#ifndef DMR_OBS_CRITICAL_PATH_H_
#define DMR_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dmr::obs {

/// \brief Records the causal structure of one simulated cluster run as a
/// DAG of lifecycle events (submit -> provider decision -> split added ->
/// attempt launched -> attempt done -> sample satisfiable -> finalize ->
/// reduce -> complete), with parent edges capturing *why* each event
/// happened when it did.
///
/// Every event carries its virtual timestamp; an event with several parents
/// was gated by the latest of them (the *binding* parent — e.g. an attempt
/// launch waits on both "split available" and "slot free"). Walking binding
/// parents backwards from a job-completion event yields the chain that set
/// that job's finish time: its critical path. The slack of the runner-up
/// parents says how much the binding dependency could shrink before another
/// one starts to bind.
///
/// One EventGraph per experiment cell, written single-threaded by the cell's
/// simulation (same threading model as TraceStream). Recording is only
/// reachable through a non-null obs::Scope, so the zero-observer path pays
/// nothing.
///
/// Notifications sharing one virtual timestamp are buffered and applied in a
/// canonical semantic order (completions, then provider activity, then
/// launches — see InstantRank), not arrival order. Several attempts finishing
/// at the same instant are semantically concurrent: which one fires first is
/// a tie the event queue may break either way (see Simulation's
/// --shuffle-ties). Buffering makes every "latest X" registry — and therefore
/// the extracted critical paths — a function of the *set* of events at each
/// instant, so the analysis is invariant under tie reordering.
class EventGraph {
 public:
  enum class EventType : uint8_t {
    kSubmit,
    kProviderDecision,
    kSplitAdded,
    kAttemptLaunched,
    kAttemptDone,
    kSampleSatisfiable,
    kInputFinalized,
    kReduceStarted,
    kJobCompleted,
  };

  /// What kind of wait a parent->child edge represents (feeds the
  /// per-category time breakdown of the critical path).
  enum class EdgeCategory : uint8_t {
    kProvider,   // waiting on an Input Provider decision / input handover
    kQueueing,   // split queued behind busy slots / scheduler decisions
    kExecution,  // a map attempt actually running
    kBarrier,    // map-phase barrier before the reduce launch
    kReduce,     // the reduce task running
  };

  struct Event {
    EventType type;
    double t = 0.0;
    int job = -1;
    /// Split index for split/attempt events, -1 otherwise.
    int detail = -1;
    int node = -1;
    int slot = -1;
    /// Parent edges, in recording order.
    std::vector<std::pair<int32_t, EdgeCategory>> parents;
  };

  // --- recording (called by JobTracker / JobClient through obs::Scope) ----

  void JobSubmitted(int job, double t);
  /// `kind` is the InputResponse kind string ("input-available", ...).
  void ProviderDecision(int job, double t, const char* kind);
  void SplitAdded(int job, int split, double t);
  void AttemptLaunched(int job, int split, double t, int node, int slot,
                       bool backup);
  /// `outcome` is "ok", "failed" or "killed". A failed attempt re-arms the
  /// split's availability (the retry's launch will hang off this event).
  void AttemptDone(int job, int split, double t, int node, int slot,
                   const char* outcome);
  void SampleSatisfiable(int job, double t);  // first call per job wins
  void InputFinalized(int job, double t);
  void ReduceStarted(int job, double t);
  void JobCompleted(int job, double t);

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  // --- analysis -----------------------------------------------------------

  struct PathStep {
    EventType type;
    double t = 0.0;
    int job = -1;
    int detail = -1;
    int node = -1;
    /// Time since the binding parent (0 for the root).
    double dur = 0.0;
    /// Category of the binding edge (meaningless for the root).
    EdgeCategory category = EdgeCategory::kQueueing;
    /// binding.t - runner_up.t when the event had >= 2 parents (how much the
    /// binding dependency could shrink before another parent binds); equal
    /// to `dur` for single-parent events (the whole edge is compressible).
    double slack = 0.0;
  };

  struct JobPath {
    int job = -1;
    double finish_time = 0.0;
    /// finish_time - the job's own submit time (response time as the user
    /// saw it; falls back to path_time if the submit was never recorded).
    double response_time = 0.0;
    /// finish_time - path root time. On a shared cluster the binding chain
    /// may cross into another job (a slot freed by someone else's attempt),
    /// so the root is not necessarily this job's own submit event.
    double path_time = 0.0;
    int root_job = -1;
    EventType root_type = EventType::kSubmit;
    /// Root-first binding chain ending at the job-completed event.
    std::vector<PathStep> steps;
    /// Seconds per EdgeCategory along the path (sums to path_time).
    std::map<EdgeCategory, double> breakdown;
  };

  /// Extracts the critical path of every completed job, in canonical event
  /// order. Deterministic and tie-order independent: same-instant
  /// notifications were applied in InstantRank order, and timestamp ties
  /// between parents break towards the later-applied event.
  std::vector<JobPath> AnalyzeCriticalPaths() const;

  /// Renders the analysis of this graph as a JSON object:
  /// `{"jobs": [{"job":, "finish_time":, "path_time":, "breakdown": {...},
  ///   "path": [...], "path_truncated":}, ...]}`. Paths longer than
  /// `max_path_steps` keep only the last entries (closest to completion).
  std::string AnalysisToJson(size_t max_path_steps = 40) const;

  static const char* EventTypeName(EventType type);
  static const char* EdgeCategoryName(EdgeCategory category);

 private:
  enum class Outcome : uint8_t { kNone, kOk, kFailed, kOther };

  /// One buffered notification, applied at instant flush.
  struct Pending {
    EventType type;
    double t;
    int job;
    int detail;
    int node;
    int slot;
    Outcome outcome;  // kAttemptDone only
    bool backup;      // kAttemptLaunched only
  };

  /// Canonical application order for notifications sharing a timestamp,
  /// mirroring the simulator's semantic phases at one instant: settle
  /// finished work first, then input/provider activity, then launches, then
  /// job completion. Guarantees intra-instant parents apply before their
  /// children.
  static int InstantRank(EventType type);

  /// Buffers `p`, flushing the previous instant's batch if `p.t` moved on.
  void Enqueue(Pending p);
  /// Sorts the buffered instant by (InstantRank, job, detail, node, slot)
  /// and applies it.
  void FlushPending();
  void Apply(const Pending& p);

  // The actual recording logic, run at flush time in canonical order.
  void ApplyJobSubmitted(int job, double t);
  void ApplyProviderDecision(int job, double t);
  void ApplySplitAdded(int job, int split, double t);
  void ApplyAttemptLaunched(int job, int split, double t, int node, int slot,
                            bool backup);
  void ApplyAttemptDone(int job, int split, double t, int node, int slot,
                        Outcome outcome);
  void ApplySampleSatisfiable(int job, double t);
  void ApplyInputFinalized(int job, double t);
  void ApplyReduceStarted(int job, double t);
  void ApplyJobCompleted(int job, double t);

  int32_t AddEvent(EventType type, double t, int job, int detail, int node,
                   int slot);
  void AddParent(int32_t child, int32_t parent, EdgeCategory category);
  /// Latest provider decision of `job`, or its submit event, or -1.
  int32_t InputSourceOf(int job) const;

  std::vector<Pending> pending_;
  std::vector<Event> events_;

  // Recording-time registries resolving semantic ids to event indices.
  std::map<int, int32_t> submit_;
  std::map<int, int32_t> last_provider_;
  std::map<int, int32_t> last_done_;        // per job
  std::map<int, int32_t> satisfiable_;
  std::map<int, int32_t> finalized_;
  std::map<int, int32_t> reduce_;
  /// Split availability: the split-added event, re-armed to the failed
  /// attempt-done when a retry is pending. Keyed by (job, split).
  std::map<std::pair<int, int>, int32_t> available_;
  /// Open launch / last release per (node, slot).
  std::map<std::pair<int, int>, int32_t> open_launch_;
  std::map<std::pair<int, int>, int32_t> slot_release_;
};

}  // namespace dmr::obs

#endif  // DMR_OBS_CRITICAL_PATH_H_
