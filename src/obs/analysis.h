#ifndef DMR_OBS_ANALYSIS_H_
#define DMR_OBS_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "obs/ledger.h"

namespace dmr::obs::analysis {

/// \brief Cross-run analysis of Report::ToJson() files: parse the `ledger`
/// and `critical_path` sections, aggregate repeats, join cells across runs
/// by (driver, cell, policy, z), render comparison matrices and diff
/// against checked-in baselines. This is the library behind `dmr-analyze`;
/// it is also linked into tests directly.

/// Join key of one experiment cell. `cell` / `policy` / `z` come from the
/// driver's Testbed::Annotate calls ("cell" falls back to the auto label);
/// repeats of the same key are aggregated, not distinguished.
struct CellKey {
  std::string driver;
  std::string cell;
  std::string policy;
  std::string z;

  bool operator<(const CellKey& other) const;
  bool operator==(const CellKey& other) const;
  std::string ToString() const;
};

/// Aggregated metrics of one join key within one run (repeats summed).
struct CellAggregate {
  CellKey key;
  int repeats = 0;  // number of ledger cells merged into this aggregate

  // Slot-time ledger side.
  double makespan_sum = 0.0;
  double total_slot_seconds = 0.0;
  double category_seconds[kNumSlotCategories] = {};
  int64_t delay_holds = 0;

  // Critical-path side.
  int jobs = 0;
  double response_time_sum = 0.0;
  double path_time_sum = 0.0;
  /// Edge-category name -> summed seconds along the jobs' critical paths.
  std::map<std::string, double> path_breakdown;

  // Derived metrics (the baseline-checked set).
  double response_time() const;   // mean over jobs, seconds
  double wasted_pct() const;      // wasted / (useful+wasted+speculative)
  double utilization_pct() const; // busy slot time / total slot time
  double makespan() const;        // mean over repeats

  /// Metric by name ("response_time", "wasted_pct", "utilization_pct",
  /// "makespan"); false when the name is unknown.
  bool MetricByName(std::string_view name, double* out) const;
};

/// One parsed report file.
struct RunData {
  std::string source;  // file path (or caller-provided tag)
  std::string driver;
  std::vector<CellAggregate> cells;  // sorted by key

  const CellAggregate* FindCell(const CellKey& key) const;
};

/// Parses one Report::ToJson() document. Reports without ledger /
/// critical_path sections yield an empty cell list (valid: drivers without
/// a simulated cluster, e.g. fig4's skew model, emit empty sections).
Result<RunData> ParseReport(std::string_view json, std::string source);
Result<RunData> LoadReportFile(const std::string& path);

/// Markdown comparison matrix over N runs: one row per join key, per-run
/// metric columns (response time, wasted-work %, slot utilization,
/// makespan) plus the critical-path composition.
std::string RenderComparisonMarkdown(const std::vector<RunData>& runs);

/// The same join as a machine-readable JSON document (consumed by
/// scripts/check_obs_output.py).
std::string RenderComparisonJson(const std::vector<RunData>& runs);

/// \brief Result of diffing runs against a baseline file.
struct BaselineReport {
  /// Out-of-tolerance metrics and violated orderings (regression => exit 1).
  std::vector<std::string> failures;
  /// In-tolerance deviations and informational notes.
  std::vector<std::string> notes;
  int entries_checked = 0;
  int orderings_checked = 0;
  bool ok() const { return failures.empty(); }
};

/// Diffs `runs` against a baseline document:
/// {
///   "driver": "fig5_single_user",
///   "tolerances": {"response_time": 0.1,               // relative
///                  "wasted_pct": {"rel": 0.1, "abs": 1.0}},
///   "entries": [{"cell": ..., "policy": ..., "z": ...,
///                "metrics": {"response_time": 123.4, ...}}, ...],
///   "orderings": [{"metric": "wasted_pct", "comment": ...,
///                  "cells": [{"policy": "HA", ...}, ...]}]   // nondecreasing
/// }
/// A metric fails when |value - base| > abs + rel * |base|; an ordering
/// fails when the listed cells' metric values are not nondecreasing.
/// Missing cells fail; unknown driver mismatch fails.
Result<BaselineReport> CheckBaseline(const json::JsonValue& baseline,
                                     const std::vector<RunData>& runs);

/// Renders a fresh baseline document from `runs` with the given default
/// relative tolerance (orderings are meant to be curated by hand on top).
std::string EmitBaseline(const std::vector<RunData>& runs,
                         double default_rel_tolerance);

// ---------------------------------------------------------------------------
// `dmr-analyze timeline`: cross-run analysis of the standalone --timeline
// documents ({"driver": ..., "timeline": TimelineBook::ToJson()}). Cells are
// joined by the same (driver, cell, policy, z) key as reports; repeats are
// aggregated (sums for counts/ticks, extrema for value stats).
// ---------------------------------------------------------------------------

/// Per-window digest of one windowed (sliding-percentile) series.
struct TimelineWindowStat {
  double window = 0.0;   // window length, simulated seconds
  uint64_t count = 0;    // peak observations in any closed window (max
                         // across ticks and repeats)
  double p50_max = 0.0;  // maxima over all closed ticks (and repeats)
  double p90_max = 0.0;
  double p99_max = 0.0;
  std::vector<double> spark;  // p99 per tick (first repeat) for sparklines

  /// "count", "p50_max", "p90_max", "p99_max"; false when unknown.
  bool MetricByName(std::string_view name, double* out) const;
};

/// Digest of one timeline series (probe or windowed) within one cell.
struct TimelineSeriesStat {
  std::string name;
  std::string unit;
  std::string kind;  // "gauge" | "counter" | "windowed"
  size_t points = 0;       // total points across repeats
  double min = 0.0;        // over point *values* (not rates)
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;       // final tick's value (last repeat parsed wins)
  double t_at_max = 0.0;   // virtual time of the first occurrence of `max`
  std::vector<double> spark;  // value per tick (first repeat)
  std::vector<TimelineWindowStat> windows;  // windowed series only

  double mean() const { return points > 0 ? sum / points : 0.0; }
  /// "min", "max", "mean", "last"; false when unknown.
  bool MetricByName(std::string_view name, double* out) const;
  const TimelineWindowStat* FindWindow(double window) const;
};

/// Aggregated timeline of one join key within one run.
struct TimelineCellData {
  CellKey key;
  int repeats = 0;
  size_t ticks = 0;           // summed over repeats
  uint64_t dropped_ticks = 0; // summed over repeats
  int slo_breaches = 0;       // summed over repeats
  std::map<std::string, TimelineSeriesStat> series;
};

/// One parsed --timeline document.
struct TimelineRunData {
  std::string source;
  std::string driver;
  double interval = 1.0;
  std::vector<double> windows;
  std::vector<TimelineCellData> cells;  // sorted by key

  const TimelineCellData* FindCell(const CellKey& key) const;
};

Result<TimelineRunData> ParseTimeline(std::string_view json,
                                      std::string source);
Result<TimelineRunData> LoadTimelineFile(const std::string& path);

/// Markdown digest over N timeline runs: per join key, a probe-series
/// extrema table and a windowed-percentile table, both with unicode
/// sparklines, plus the SLO breach summary.
std::string RenderTimelineMarkdown(const std::vector<TimelineRunData>& runs);

/// Diffs timeline runs against a baseline document:
/// {
///   "kind": "timeline",
///   "driver": "fig5_single_user",
///   "tolerances": {"p99_max": 0.1, "mean": {"rel": 0.1, "abs": 0.5}},
///   "entries": [{"cell": ..., "policy": ..., "z": ...,
///                "series": [{"name": "mapred.job_response", "window": 60,
///                            "metrics": {"p99_max": 12.5, ...}},
///                           {"name": "sim.live_size",
///                            "metrics": {"max": 400, "mean": 210}}]}]
/// }
/// Windowed series carry a "window" field (the per-window regression
/// band); probe series omit it. The tolerance rule is the same as
/// CheckBaseline: fail when |value - base| > abs + rel * |base|. Missing
/// cells, series or windows fail.
Result<BaselineReport> CheckTimelineBaseline(
    const json::JsonValue& baseline,
    const std::vector<TimelineRunData>& runs);

/// Renders a fresh timeline baseline from `runs` (first run that has a
/// cell wins, matching EmitBaseline).
std::string EmitTimelineBaseline(const std::vector<TimelineRunData>& runs,
                                 double default_rel_tolerance);

// ---------------------------------------------------------------------------
// `dmr-analyze profile`: the host-side profile sections ("prof", written by
// bench drivers under --profile=FILE) of Report::ToJson() metrics files.
// Phases join across runs by collapsed path ("sim.run_until;sim.dispatch");
// regression bands are per (path, metric), with the same tolerance rule as
// CheckBaseline. Raw nanosecond fields are kept as integers so the
// collapsed-stack re-emission is byte-identical to the driver's --profile
// file (the round-trip tier-1 check).
// ---------------------------------------------------------------------------

/// One phase node of a parsed profile (see prof::PhaseStat for semantics).
struct ProfilePhaseStat {
  std::string path;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  double self_ms() const { return static_cast<double>(self_ns) / 1e6; }

  /// "count", "total_ms", "self_ms", "min_us", "max_us"; false when unknown.
  bool MetricByName(std::string_view name, double* out) const;
};

struct ProfileAllocStat {
  std::string site;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

/// One parsed metrics file's "prof" section.
struct ProfileRunData {
  std::string source;
  std::string driver;
  double calibration_ns = 0.0;
  int threads = 0;
  int imbalances = 0;
  std::vector<ProfilePhaseStat> phases;  // sorted by path, as emitted
  std::vector<ProfileAllocStat> alloc;

  const ProfilePhaseStat* FindPhase(std::string_view path) const;
};

/// Parses one Report::ToJson() document carrying a "prof" section (a
/// metrics file from a --profile run). A report without the section is an
/// error: profiling was not enabled for that run.
Result<ProfileRunData> ParseProfile(std::string_view json, std::string source);
Result<ProfileRunData> LoadProfileFile(const std::string& path);

/// Markdown digest over N profile runs: per run, a top-`top_n` self-time
/// attribution table plus the allocation-accounting table; with two or
/// more runs, a cross-run self-time comparison matrix over the union of
/// phase paths.
std::string RenderProfileMarkdown(const std::vector<ProfileRunData>& runs,
                                  size_t top_n);

/// Re-emits the run as Brendan-Gregg collapsed-stack text — byte-identical
/// to the prof::ToCollapsed output the driver wrote, for round-trip checks
/// and for feeding flamegraph.pl from an archived metrics file.
std::string RenderProfileCollapsed(const ProfileRunData& run);

/// Diffs profile runs against a baseline document:
/// {
///   "kind": "profile",
///   "driver": "fig5_single_user",
///   "require_balanced": true,            // fail when imbalances != 0
///   "tolerances": {"count": 0.05, "self_ms": {"rel": 0.25, "abs": 1.0}},
///   "entries": [{"path": "sim.run_until;sim.dispatch",
///                "metrics": {"count": 123456}}, ...]
/// }
/// Fail when |value - base| > abs + rel * |base|; missing phases fail.
/// Checked-in baselines should band call counts (deterministic across
/// machines); time bands are for same-host A/B comparisons.
Result<BaselineReport> CheckProfileBaseline(
    const json::JsonValue& baseline, const std::vector<ProfileRunData>& runs);

/// Renders a fresh profile baseline from `runs` (first run with the phase
/// wins). Only the deterministic "count" metric is emitted; time bands are
/// meant to be curated by hand where a stable host can be assumed.
std::string EmitProfileBaseline(const std::vector<ProfileRunData>& runs,
                                double default_rel_tolerance);

}  // namespace dmr::obs::analysis

#endif  // DMR_OBS_ANALYSIS_H_
