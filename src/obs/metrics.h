#ifndef DMR_OBS_METRICS_H_
#define DMR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/affinity.h"

namespace dmr::obs {

/// Typed, index-based metric handles. A handle is obtained once via
/// Register* (which dedupes by name) and then used on the hot path: an
/// increment through a handle is an array index plus an add — no map
/// lookup, no string hashing, no lock.
struct CounterHandle {
  uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};
struct GaugeHandle {
  uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};
struct HistogramHandle {
  uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};

/// \brief HDR-style log-bucketed latency histogram state, merged across
/// shards at snapshot time.
///
/// Values are bucketed by binary exponent with kSubBuckets linear
/// sub-buckets per octave (~3 % relative precision at 32 sub-buckets),
/// so merging shards is a commutative sum of bucket counts — snapshot
/// results are deterministic regardless of which worker recorded what.
class HistogramData {
 public:
  static constexpr int kSubBuckets = 32;
  static constexpr int kMinExponent = -64;  // 2^-64 .. 2^63 value range
  static constexpr int kMaxExponent = 63;
  static constexpr int kNumBuckets =
      1 + (kMaxExponent - kMinExponent + 1) * kSubBuckets;

  void Observe(double value);
  void MergeFrom(const HistogramData& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Nearest-rank percentile over the bucket counts, q in [0, 100].
  /// Answers are bucket lower edges (clamped to the recorded min/max), so
  /// two runs that observed the same multiset of values — in any order,
  /// from any number of threads — report identical percentiles.
  double Percentile(double q) const;

  /// Bucket mapping, shared with obs::Timeline's sliding-window
  /// percentiles so the windowed p99 and the end-of-run p99 agree on
  /// bucket edges. Values <= 0 or non-finite land in bucket 0.
  static int BucketFor(double value);
  static double BucketLowerEdge(int bucket);

 private:
  /// Lazily sized to kNumBuckets on the first observation.
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief A registry of named counters, gauges and latency histograms with
/// per-thread (per-ThreadPool-worker) shards.
///
/// Design for the simulator's hot path (heartbeats, task launches):
///  * **Pre-registered handles.** Register* is called at setup (Scope
///    construction) under a lock; increments then index straight into the
///    calling thread's shard.
///  * **Per-worker shards.** Each writer thread lazily gets its own shard
///    (one pointer compare on the fast path via a thread-local cache), so
///    parallel experiment cells never contend on metric cache lines.
///  * **Deterministic merge.** TakeSnapshot sums counters and histogram
///    buckets across shards and sorts metrics by name, so the snapshot is
///    byte-stable for a given workload regardless of thread schedule.
///    Gauges are last-writer-wins (a global version stamp picks the most
///    recent set) and are the one knowingly schedule-dependent exception.
///
/// Threading contract: Register*/Add/Set/Observe may be called from any
/// thread; TakeSnapshot must only run at a quiescent point (no concurrent
/// writers — e.g. after ThreadPool::Wait()).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration dedupes by name: re-registering an existing metric of
  /// the same type returns the original handle, so independently
  /// constructed Scopes share one metric namespace.
  CounterHandle RegisterCounter(std::string_view name);
  GaugeHandle RegisterGauge(std::string_view name);
  HistogramHandle RegisterHistogram(std::string_view name,
                                    std::string_view unit = "s");

  void Add(CounterHandle h, int64_t delta = 1);
  void Set(GaugeHandle h, double value);
  void Observe(HistogramHandle h, double value);

  struct HistogramSnapshot {
    std::string name;
    std::string unit;
    uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };

  struct Snapshot {
    /// Sorted by name.
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    const int64_t* FindCounter(std::string_view name) const;
    const HistogramSnapshot* FindHistogram(std::string_view name) const;
  };

  /// Merges all shards; see the threading contract above.
  Snapshot TakeSnapshot() const;

  size_t num_shards() const;

 private:
  struct Shard;
  struct GaugeCell {
    uint64_t version = 0;
    double value = 0.0;
  };

  Shard* ShardSlow();
  Shard& LocalShard();

  const uint64_t id_;  // process-unique, guards the thread-local cache

  mutable std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::string> histogram_units_;
  /// Per-thread metric shards; shard-affine in the sim/affinity.h sense
  /// (each belongs to the thread that faulted it in via LocalShard), with
  /// mu_ guarding the list itself for the registration/snapshot seams.
  DMR_SHARD_AFFINE std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> gauge_version_{0};
};

}  // namespace dmr::obs

#endif  // DMR_OBS_METRICS_H_
