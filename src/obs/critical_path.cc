#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace dmr::obs {

namespace {

std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

const char* EventGraph::EventTypeName(EventType type) {
  switch (type) {
    case EventType::kSubmit: return "submit";
    case EventType::kProviderDecision: return "provider_decision";
    case EventType::kSplitAdded: return "split_added";
    case EventType::kAttemptLaunched: return "attempt_launched";
    case EventType::kAttemptDone: return "attempt_done";
    case EventType::kSampleSatisfiable: return "sample_satisfiable";
    case EventType::kInputFinalized: return "input_finalized";
    case EventType::kReduceStarted: return "reduce_started";
    case EventType::kJobCompleted: return "job_completed";
  }
  return "unknown";
}

const char* EventGraph::EdgeCategoryName(EdgeCategory category) {
  switch (category) {
    case EdgeCategory::kProvider: return "provider";
    case EdgeCategory::kQueueing: return "queueing";
    case EdgeCategory::kExecution: return "execution";
    case EdgeCategory::kBarrier: return "barrier";
    case EdgeCategory::kReduce: return "reduce";
  }
  return "unknown";
}

int EventGraph::InstantRank(EventType type) {
  switch (type) {
    case EventType::kSubmit: return 0;
    case EventType::kAttemptDone: return 1;
    case EventType::kSampleSatisfiable: return 2;
    case EventType::kProviderDecision: return 3;
    case EventType::kSplitAdded: return 4;
    case EventType::kInputFinalized: return 5;
    case EventType::kReduceStarted: return 6;
    case EventType::kAttemptLaunched: return 7;
    case EventType::kJobCompleted: return 8;
  }
  return 9;
}

void EventGraph::Enqueue(Pending p) {
  if (!pending_.empty() && pending_.front().t != p.t) FlushPending();
  pending_.push_back(p);
}

void EventGraph::FlushPending() {
  if (pending_.empty()) return;
  std::sort(pending_.begin(), pending_.end(),
            [](const Pending& a, const Pending& b) {
              int ra = InstantRank(a.type);
              int rb = InstantRank(b.type);
              if (ra != rb) return ra < rb;
              if (a.job != b.job) return a.job < b.job;
              if (a.detail != b.detail) return a.detail < b.detail;
              if (a.node != b.node) return a.node < b.node;
              return a.slot < b.slot;
            });
  // Swap the batch out so an Apply can never observe a half-flushed buffer.
  std::vector<Pending> batch;
  batch.swap(pending_);
  for (const Pending& p : batch) Apply(p);
}

void EventGraph::Apply(const Pending& p) {
  switch (p.type) {
    case EventType::kSubmit:
      ApplyJobSubmitted(p.job, p.t);
      break;
    case EventType::kProviderDecision:
      ApplyProviderDecision(p.job, p.t);
      break;
    case EventType::kSplitAdded:
      ApplySplitAdded(p.job, p.detail, p.t);
      break;
    case EventType::kAttemptLaunched:
      ApplyAttemptLaunched(p.job, p.detail, p.t, p.node, p.slot, p.backup);
      break;
    case EventType::kAttemptDone:
      ApplyAttemptDone(p.job, p.detail, p.t, p.node, p.slot, p.outcome);
      break;
    case EventType::kSampleSatisfiable:
      ApplySampleSatisfiable(p.job, p.t);
      break;
    case EventType::kInputFinalized:
      ApplyInputFinalized(p.job, p.t);
      break;
    case EventType::kReduceStarted:
      ApplyReduceStarted(p.job, p.t);
      break;
    case EventType::kJobCompleted:
      ApplyJobCompleted(p.job, p.t);
      break;
  }
}

int32_t EventGraph::AddEvent(EventType type, double t, int job, int detail,
                             int node, int slot) {
  Event e;
  e.type = type;
  e.t = t;
  e.job = job;
  e.detail = detail;
  e.node = node;
  e.slot = slot;
  events_.push_back(std::move(e));
  return static_cast<int32_t>(events_.size() - 1);
}

void EventGraph::AddParent(int32_t child, int32_t parent,
                           EdgeCategory category) {
  if (parent < 0) return;
  DMR_CHECK(parent < child) << "event graph parent must precede child";
  events_[child].parents.emplace_back(parent, category);
}

int32_t EventGraph::InputSourceOf(int job) const {
  if (auto it = last_provider_.find(job); it != last_provider_.end()) {
    return it->second;
  }
  if (auto it = submit_.find(job); it != submit_.end()) return it->second;
  return -1;
}

void EventGraph::JobSubmitted(int job, double t) {
  Enqueue({EventType::kSubmit, t, job, -1, -1, -1, Outcome::kNone, false});
}

void EventGraph::ProviderDecision(int job, double t, const char* kind) {
  (void)kind;
  Enqueue({EventType::kProviderDecision, t, job, -1, -1, -1, Outcome::kNone,
           false});
}

void EventGraph::SplitAdded(int job, int split, double t) {
  Enqueue({EventType::kSplitAdded, t, job, split, -1, -1, Outcome::kNone,
           false});
}

void EventGraph::AttemptLaunched(int job, int split, double t, int node,
                                 int slot, bool backup) {
  Enqueue({EventType::kAttemptLaunched, t, job, split, node, slot,
           Outcome::kNone, backup});
}

void EventGraph::AttemptDone(int job, int split, double t, int node, int slot,
                             const char* outcome) {
  Outcome oc = Outcome::kOther;
  if (std::strcmp(outcome, "ok") == 0) {
    oc = Outcome::kOk;
  } else if (std::strcmp(outcome, "failed") == 0) {
    oc = Outcome::kFailed;
  }
  Enqueue({EventType::kAttemptDone, t, job, split, node, slot, oc, false});
}

void EventGraph::SampleSatisfiable(int job, double t) {
  Enqueue({EventType::kSampleSatisfiable, t, job, -1, -1, -1, Outcome::kNone,
           false});
}

void EventGraph::InputFinalized(int job, double t) {
  Enqueue({EventType::kInputFinalized, t, job, -1, -1, -1, Outcome::kNone,
           false});
}

void EventGraph::ReduceStarted(int job, double t) {
  Enqueue({EventType::kReduceStarted, t, job, -1, -1, -1, Outcome::kNone,
           false});
}

void EventGraph::JobCompleted(int job, double t) {
  Enqueue({EventType::kJobCompleted, t, job, -1, -1, -1, Outcome::kNone,
           false});
}

void EventGraph::ApplyJobSubmitted(int job, double t) {
  submit_[job] = AddEvent(EventType::kSubmit, t, job, -1, -1, -1);
}

void EventGraph::ApplyProviderDecision(int job, double t) {
  int32_t id = AddEvent(EventType::kProviderDecision, t, job, -1, -1, -1);
  // The decision waits on the eval timer since the previous decision (or
  // submit) and on the map completions it evaluated.
  AddParent(id, InputSourceOf(job), EdgeCategory::kProvider);
  if (auto it = last_done_.find(job); it != last_done_.end()) {
    AddParent(id, it->second, EdgeCategory::kProvider);
  }
  last_provider_[job] = id;
}

void EventGraph::ApplySplitAdded(int job, int split, double t) {
  int32_t id = AddEvent(EventType::kSplitAdded, t, job, split, -1, -1);
  AddParent(id, InputSourceOf(job), EdgeCategory::kProvider);
  available_[{job, split}] = id;
}

void EventGraph::ApplyAttemptLaunched(int job, int split, double t, int node,
                                      int slot, bool backup) {
  int32_t id = AddEvent(EventType::kAttemptLaunched, t, job, split, node,
                        slot);
  // The launch was gated by the split existing (retry: the prior failure)
  // and by the slot being free; whichever came later binds.
  if (auto it = available_.find({job, split}); it != available_.end()) {
    AddParent(id, it->second, EdgeCategory::kQueueing);
  } else if (backup) {
    // Backups copy an already-running split; hang them off the job's input.
    AddParent(id, InputSourceOf(job), EdgeCategory::kQueueing);
  }
  if (auto it = slot_release_.find({node, slot}); it != slot_release_.end()) {
    AddParent(id, it->second, EdgeCategory::kQueueing);
  }
  open_launch_[{node, slot}] = id;
}

void EventGraph::ApplyAttemptDone(int job, int split, double t, int node,
                                  int slot, Outcome outcome) {
  int32_t id = AddEvent(EventType::kAttemptDone, t, job, split, node, slot);
  if (auto it = open_launch_.find({node, slot}); it != open_launch_.end()) {
    AddParent(id, it->second, EdgeCategory::kExecution);
    open_launch_.erase(it);
  }
  slot_release_[{node, slot}] = id;
  if (outcome == Outcome::kOk) {
    last_done_[job] = id;
    available_.erase({job, split});
  } else if (outcome == Outcome::kFailed) {
    // The retry's launch will wait on this failure.
    available_[{job, split}] = id;
  }
}

void EventGraph::ApplySampleSatisfiable(int job, double t) {
  if (satisfiable_.count(job) != 0) return;
  int32_t id = AddEvent(EventType::kSampleSatisfiable, t, job, -1, -1, -1);
  if (auto it = last_done_.find(job); it != last_done_.end()) {
    AddParent(id, it->second, EdgeCategory::kBarrier);
  } else {
    AddParent(id, InputSourceOf(job), EdgeCategory::kBarrier);
  }
  satisfiable_[job] = id;
}

void EventGraph::ApplyInputFinalized(int job, double t) {
  int32_t id = AddEvent(EventType::kInputFinalized, t, job, -1, -1, -1);
  if (auto it = satisfiable_.find(job); it != satisfiable_.end()) {
    AddParent(id, it->second, EdgeCategory::kProvider);
  }
  AddParent(id, InputSourceOf(job), EdgeCategory::kProvider);
  finalized_[job] = id;
}

void EventGraph::ApplyReduceStarted(int job, double t) {
  int32_t id = AddEvent(EventType::kReduceStarted, t, job, -1, -1, -1);
  // Map-phase barrier: the reduce waits for the input set to be final and
  // for the last map of the job to drain.
  if (auto it = finalized_.find(job); it != finalized_.end()) {
    AddParent(id, it->second, EdgeCategory::kBarrier);
  }
  if (auto it = last_done_.find(job); it != last_done_.end()) {
    AddParent(id, it->second, EdgeCategory::kBarrier);
  } else {
    AddParent(id, InputSourceOf(job), EdgeCategory::kBarrier);
  }
  reduce_[job] = id;
}

void EventGraph::ApplyJobCompleted(int job, double t) {
  int32_t id = AddEvent(EventType::kJobCompleted, t, job, -1, -1, -1);
  if (auto it = reduce_.find(job); it != reduce_.end()) {
    AddParent(id, it->second, EdgeCategory::kReduce);
  } else if (auto it2 = last_done_.find(job); it2 != last_done_.end()) {
    AddParent(id, it2->second, EdgeCategory::kExecution);
  } else {
    AddParent(id, InputSourceOf(job), EdgeCategory::kProvider);
  }
}

std::vector<EventGraph::JobPath> EventGraph::AnalyzeCriticalPaths() const {
  // Logically const: materializing the final instant's buffered
  // notifications changes the representation, not the recorded set.
  const_cast<EventGraph*>(this)->FlushPending();
  std::vector<JobPath> paths;
  for (size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].type != EventType::kJobCompleted) continue;

    JobPath path;
    path.job = events_[i].job;
    path.finish_time = events_[i].t;
    if (auto it = submit_.find(path.job); it != submit_.end()) {
      path.response_time = path.finish_time - events_[it->second].t;
    }

    // Walk binding parents back to a root. Parent ids are strictly smaller
    // than child ids, so the walk terminates.
    std::vector<PathStep> rev;
    int32_t cur = static_cast<int32_t>(i);
    while (cur >= 0) {
      const Event& e = events_[cur];
      PathStep step;
      step.type = e.type;
      step.t = e.t;
      step.job = e.job;
      step.detail = e.detail;
      step.node = e.node;

      if (e.parents.empty()) {
        rev.push_back(step);
        path.root_job = e.job;
        path.root_type = e.type;
        break;
      }
      // Binding parent: latest timestamp; ties break towards the
      // later-recorded event (deterministic, matches DES causal order).
      size_t best = 0;
      for (size_t p = 1; p < e.parents.size(); ++p) {
        const Event& cand = events_[e.parents[p].first];
        const Event& cur_best = events_[e.parents[best].first];
        if (cand.t > cur_best.t ||
            (cand.t == cur_best.t &&
             e.parents[p].first > e.parents[best].first)) {
          best = p;
        }
      }
      const Event& bind = events_[e.parents[best].first];
      step.dur = e.t - bind.t;
      step.category = e.parents[best].second;
      if (e.parents.size() >= 2) {
        double runner_up = -1.0;
        for (size_t p = 0; p < e.parents.size(); ++p) {
          if (p == best) continue;
          runner_up = std::max(runner_up, events_[e.parents[p].first].t);
        }
        step.slack = bind.t - runner_up;
      } else {
        step.slack = step.dur;
      }
      rev.push_back(step);
      cur = e.parents[best].first;
    }

    std::reverse(rev.begin(), rev.end());
    path.steps = std::move(rev);
    if (!path.steps.empty()) {
      path.path_time = path.finish_time - path.steps.front().t;
      if (submit_.count(path.job) == 0) path.response_time = path.path_time;
      // Skip the root step: it has dur 0 and a meaningless category.
      for (size_t s = 1; s < path.steps.size(); ++s) {
        path.breakdown[path.steps[s].category] += path.steps[s].dur;
      }
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string EventGraph::AnalysisToJson(size_t max_path_steps) const {
  std::vector<JobPath> paths = AnalyzeCriticalPaths();
  std::string out = "{\"jobs\": [";
  for (size_t i = 0; i < paths.size(); ++i) {
    const JobPath& p = paths[i];
    if (i > 0) out += ",";
    out += "\n      {\"job\": " + std::to_string(p.job) +
           ", \"finish_time\": " + Num(p.finish_time) +
           ", \"response_time\": " + Num(p.response_time) +
           ", \"path_time\": " + Num(p.path_time) +
           ", \"root_job\": " + std::to_string(p.root_job) +
           ", \"root_type\": \"" + EventTypeName(p.root_type) + "\"";
    out += ", \"breakdown\": {";
    bool first = true;
    for (const auto& [cat, secs] : p.breakdown) {
      if (!first) out += ", ";
      first = false;
      out += std::string("\"") + EdgeCategoryName(cat) + "\": " + Num(secs);
    }
    out += "}";
    size_t begin = p.steps.size() > max_path_steps
                       ? p.steps.size() - max_path_steps
                       : 0;
    out += ", \"path_truncated\": ";
    out += begin > 0 ? "true" : "false";
    out += ", \"path\": [";
    for (size_t s = begin; s < p.steps.size(); ++s) {
      const PathStep& st = p.steps[s];
      if (s > begin) out += ",";
      out += "\n        {\"event\": \"" + std::string(EventTypeName(st.type)) +
             "\", \"t\": " + Num(st.t) + ", \"job\": " +
             std::to_string(st.job);
      if (st.detail >= 0) out += ", \"split\": " + std::to_string(st.detail);
      if (st.node >= 0) out += ", \"node\": " + std::to_string(st.node);
      if (s > 0) {
        out += std::string(", \"category\": \"") +
               EdgeCategoryName(st.category) + "\", \"dur\": " + Num(st.dur) +
               ", \"slack\": " + Num(st.slack);
      }
      out += "}";
    }
    out += p.steps.size() - begin > 0 ? "\n      ]}" : "]}";
  }
  out += paths.empty() ? "]}" : "\n    ]}";
  return out;
}

}  // namespace dmr::obs
