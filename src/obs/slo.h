#ifndef DMR_OBS_SLO_H_
#define DMR_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dmr::obs {

class Timeline;
class TraceStream;
class FlightRecorder;

/// One declarative service-level objective over a timeline series:
///   p<quantile>(<series>, <window>s) < max_value
/// plus an error-budget burn alert: once the fraction of evaluated ticks
/// in breach exceeds `budget_fraction`, the budget is burned (latched —
/// a budget, once spent, stays spent for the run).
struct SloRule {
  std::string name;        // rule id, e.g. "job_response_p99"
  std::string series;      // windowed timeline series, e.g. "mapred.job_response"
  double window = 60.0;    // simulated seconds
  double quantile = 99.0;  // 50, 90 or 99
  double max_value = 0.0;  // breach when measured >= max_value
  double budget_fraction = 1.0;  // burn alert past this breach-tick fraction
};

/// \brief Evaluates SLO rules against a Timeline each tick and records
/// breach *instants* — the tick at which a rule crosses from ok to
/// breached — into the trace (instant event on the client track), the
/// flight recorder (kSloBreach) and its own JSON report.
///
/// Evaluation reads only closed window stats at virtual tick times, so
/// breach placement inherits the timeline's byte-identity across thread
/// counts, queue kinds and tie-shuffle seeds.
class SloMonitor {
 public:
  struct Breach {
    double t = 0.0;
    int32_t rule = -1;       // index into rules()
    bool burn = false;       // false: threshold crossing; true: budget burn
    double measured = 0.0;   // the offending windowed value / burn fraction
  };

  explicit SloMonitor(Timeline* timeline) : timeline_(timeline) {}

  /// Optional sinks for breach instants (any may stay unset).
  void AttachTrace(TraceStream* trace, int pid) {
    trace_ = trace;
    trace_pid_ = pid;
  }
  void AttachFlightRecorder(FlightRecorder* flight) { flight_ = flight; }

  /// Returns the rule index.
  int AddRule(const SloRule& rule);

  const std::vector<SloRule>& rules() const { return rules_; }
  const std::vector<Breach>& breaches() const { return breaches_; }

  /// Evaluates every rule at virtual time `now` (call once per closed
  /// tick, after Timeline::Sample).
  void Evaluate(double now);

  /// {"rules":[{name, series, window, quantile, max, budget,
  /// evaluated_ticks, breached_ticks, budget_burned}],
  ///  "breaches":[{t, rule, kind, measured}]}.
  std::string ToJson() const;

 private:
  struct RuleState {
    uint64_t evaluated_ticks = 0;
    uint64_t breached_ticks = 0;
    bool in_breach = false;
    bool budget_burned = false;
  };

  Timeline* timeline_;
  TraceStream* trace_ = nullptr;
  int trace_pid_ = 0;
  FlightRecorder* flight_ = nullptr;
  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;
  std::vector<Breach> breaches_;
};

}  // namespace dmr::obs

#endif  // DMR_OBS_SLO_H_
