#ifndef DMR_OBS_SCOPE_H_
#define DMR_OBS_SCOPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmr::obs {

class EventGraph;
class FlightRecorder;
class Ledger;
class LedgerBook;
struct LedgerCell;
class SloMonitor;
class Timeline;
class TimelineBook;
struct TimelineCell;

/// \brief The standard pre-registered metric handle set shared by every
/// instrumented component. Registering the same names twice is safe
/// (MetricsRegistry dedupes), so each Scope owns its own copy of the
/// handles while all Scopes on one registry share the metrics.
struct StandardMetrics {
  StandardMetrics() = default;
  /// Registers everything on `registry` (null leaves the handles invalid,
  /// which makes every recording call a no-op).
  explicit StandardMetrics(MetricsRegistry* registry);

  // JobTracker lifecycle counters.
  CounterHandle heartbeats;
  CounterHandle jobs_submitted;
  CounterHandle jobs_completed;
  CounterHandle splits_added;
  CounterHandle maps_launched;
  CounterHandle maps_completed;
  CounterHandle maps_failed;
  CounterHandle backups_launched;
  CounterHandle attempts_killed;
  CounterHandle reduces_launched;

  // Input-provider decision counters (recorded by the JobClient loop).
  CounterHandle provider_evaluations;
  CounterHandle provider_grows;
  CounterHandle provider_waits;
  CounterHandle provider_end_of_input;

  // Scheduler counters.
  CounterHandle sched_decisions;
  CounterHandle sched_delay_holds;
  CounterHandle sched_delay_skips;

  // DFS counters.
  CounterHandle dfs_files_created;
  CounterHandle dfs_partitions_placed;
  CounterHandle dfs_bytes_placed;

  // Adaptive-layout counters (zone-map pruning + piggybacked indexing,
  // DESIGN.md §16). The exec.* set is recorded by the record-level
  // LocalRuntime; splits_pruned by the simulator's per-split cost model
  // when a grabbed split's stats hint reduced it to a stats-read.
  CounterHandle exec_partitions_pruned;
  CounterHandle exec_batches_pruned;
  CounterHandle exec_rows_skipped;
  CounterHandle exec_index_builds;
  CounterHandle exec_index_hits;
  CounterHandle splits_pruned;

  // Virtual-time tie-race detector totals (recorded once per cell when the
  // testbed tears down; see sim::TieStats). Invariant across
  // --shuffle-ties seeds when the system is tie-order independent.
  CounterHandle sim_tie_groups;
  CounterHandle sim_tie_events;

  // Latency histograms. task_wait/task_run/job_response are in simulated
  // seconds; heartbeat_assign/provider_decision are host wall-clock
  // microseconds (they time the *decision code*, which runs in zero
  // simulated time).
  HistogramHandle task_wait;
  HistogramHandle task_run;
  HistogramHandle job_response;
  HistogramHandle heartbeat_assign;
  HistogramHandle provider_decision;

  // Gauges (last-writer-wins; diagnostic only).
  GaugeHandle selectivity_estimate;
  GaugeHandle observed_skew_cv;
};

/// \brief The nullable observability context threaded through the
/// execution layers (JobTracker, schedulers, providers, DFS, cluster).
///
/// Components hold an `obs::Scope*` that is null by default; every
/// instrumentation site is guarded by that null check, which preserves
/// the zero-overhead-when-off contract (no obs work, no allocations, no
/// atomic traffic on the simulation hot path unless a scope is attached).
///
/// A Scope pairs one (shared, sharded) MetricsRegistry with one
/// (per-cell) TraceStream, one (per-cell) LedgerCell holding the
/// slot-time ledger + critical-path event graph, and one (per-cell)
/// TimelineCell holding the virtual-time sampler + SLO monitor + flight
/// recorder; any may be absent.
class Scope {
 public:
  Scope(MetricsRegistry* metrics, TraceStream* trace,
        LedgerCell* cell = nullptr, TimelineCell* tcell = nullptr)
      : metrics_(metrics),
        trace_(trace),
        cell_(cell),
        tcell_(tcell),
        m_(metrics) {}

  MetricsRegistry* metrics() const { return metrics_; }
  /// Null when tracing is off — callers must check.
  TraceStream* trace() const { return trace_; }
  /// Null when no ledger book is installed — callers must check. These
  /// are defined out-of-line so this header needn't pull in ledger.h /
  /// timeline.h.
  Ledger* ledger() const;
  EventGraph* graph() const;
  /// Null when no timeline book is installed — callers must check.
  Timeline* timeline() const;
  FlightRecorder* flight() const;
  SloMonitor* slo() const;
  LedgerCell* cell() const { return cell_; }
  TimelineCell* timeline_cell() const { return tcell_; }
  /// Attaches a driver-provided (key, value) annotation to the cell (used
  /// to key cross-run joins in dmr-analyze). Mirrors into both the ledger
  /// and the timeline cell; no-op when neither is present.
  void Annotate(std::string_view key, std::string_view value);
  const StandardMetrics& m() const { return m_; }

  void Count(CounterHandle h, int64_t delta = 1) {
    if (metrics_ != nullptr) metrics_->Add(h, delta);
  }
  void Observe(HistogramHandle h, double value) {
    if (metrics_ != nullptr) metrics_->Observe(h, value);
  }
  void SetGauge(GaugeHandle h, double value) {
    if (metrics_ != nullptr) metrics_->Set(h, value);
  }

 private:
  MetricsRegistry* metrics_;
  TraceStream* trace_;
  LedgerCell* cell_;
  TimelineCell* tcell_;
  StandardMetrics m_;
};

/// \brief A process-global observability session, installed by the bench
/// harness when `--trace=`/`--metrics=` are given.
///
/// Components never read the hub directly; only the Testbed does, to
/// auto-attach a Scope per experiment cell, so library users who pass
/// their own Scope (or none) are unaffected. Install/Uninstall are meant
/// for the single-threaded setup/teardown edges of a driver run.
class Hub {
 public:
  /// Installs the global session (non-owning; any may be null).
  static void Install(MetricsRegistry* registry, TraceRecorder* recorder,
                      LedgerBook* book = nullptr,
                      TimelineBook* timelines = nullptr);
  static void Uninstall();

  static bool active();
  static MetricsRegistry* registry();
  static TraceRecorder* recorder();
  static LedgerBook* book();
  static TimelineBook* timeline_book();

  /// Monotone per-install cell sequence, used to label auto-attached
  /// testbed streams ("cell-0001", ...).
  static std::string NextCellLabel();
};

/// Creates a trace stream + scope for one simulated cluster: pids 0..n-1
/// are the nodes, pid n is the client/provider track. When `book` is
/// non-null, a LedgerCell (slot-time ledger + event graph, dimensioned
/// `num_nodes x map_slots_per_node`) is opened under `label` as well;
/// when `timelines` is non-null, a TimelineCell is opened too. Any input
/// may be null; returns a scope recording whatever is available.
std::unique_ptr<Scope> MakeClusterScope(MetricsRegistry* registry,
                                        TraceRecorder* recorder,
                                        LedgerBook* book,
                                        std::string_view label,
                                        int num_nodes,
                                        int map_slots_per_node,
                                        TimelineBook* timelines = nullptr);

}  // namespace dmr::obs

#endif  // DMR_OBS_SCOPE_H_
