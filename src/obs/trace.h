#ifndef DMR_OBS_TRACE_H_
#define DMR_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dmr::obs {

/// \brief One key/value argument attached to a trace event ("args" in the
/// Chrome trace-event format). Values are pre-rendered JSON fragments.
class TraceArgs {
 public:
  TraceArgs& Set(std::string_view key, std::string_view value);
  TraceArgs& Set(std::string_view key, const char* value);
  TraceArgs& Set(std::string_view key, double value);
  TraceArgs& Set(std::string_view key, int value);
  TraceArgs& Set(std::string_view key, int64_t value);
  TraceArgs& Set(std::string_view key, uint64_t value);
  TraceArgs& Set(std::string_view key, bool value);

  bool empty() const { return fields_.empty(); }

  /// Renders `{"k": v, ...}`.
  std::string ToJson() const;

 private:
  TraceArgs& Raw(std::string_view key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;
};

class TraceRecorder;

/// \brief A per-experiment-cell event sink feeding one TraceRecorder.
///
/// Chrome's trace-event format organizes events into processes (pid) and
/// threads (tid); we map **pid = one simulated node** (plus one extra
/// "client" track) and **tid = one map slot** on that node, so Perfetto
/// renders the cluster as a swim-lane per slot. Because many independent
/// simulations may record into one file, each stream owns a contiguous
/// pid range; local pids passed to the methods below are relative to the
/// stream and translated internally.
///
/// A stream is single-threaded (it belongs to one simulation cell); only
/// its creation and the final WriteJson are synchronized.
class TraceStream {
 public:
  /// Names the track group, e.g. "cell-0007 node3" (Chrome "process_name"
  /// metadata).
  void ProcessName(int pid, std::string_view name);
  /// Names one lane within a pid (Chrome "thread_name" metadata).
  void ThreadName(int pid, int tid, std::string_view name);

  /// A complete span ("ph":"X"): `ts`/`dur` in simulated seconds.
  void Complete(double ts, double dur, int pid, int tid,
                std::string_view name, std::string_view cat,
                const TraceArgs& args = {});

  /// Async span pair ("ph":"b"/"e"), correlated by (cat, id).
  void AsyncBegin(double ts, uint64_t id, int pid, std::string_view name,
                  std::string_view cat, const TraceArgs& args = {});
  void AsyncEnd(double ts, uint64_t id, int pid, std::string_view name,
                std::string_view cat, const TraceArgs& args = {});

  /// An instant event ("ph":"i", thread scope).
  void Instant(double ts, int pid, int tid, std::string_view name,
               std::string_view cat, const TraceArgs& args = {});

  /// A counter track sample ("ph":"C").
  void Counter(double ts, int pid, std::string_view name,
               std::string_view series, double value);

  int num_pids() const { return num_pids_; }
  const std::string& label() const { return label_; }
  size_t num_events() const { return events_.size(); }

 private:
  friend class TraceRecorder;
  TraceStream(std::string label, int pid_base, int num_pids,
              uint64_t id_base)
      : label_(std::move(label)),
        pid_base_(pid_base),
        num_pids_(num_pids),
        id_base_(id_base) {}

  void Push(std::string event) { events_.push_back(std::move(event)); }
  std::string Header(char ph, double ts, int pid, int tid,
                     std::string_view name, std::string_view cat) const;

  std::string label_;
  int pid_base_;
  int num_pids_;
  /// Namespaces async-span ids so two cells' job 1 spans never correlate.
  uint64_t id_base_;
  std::vector<std::string> events_;  // rendered JSON objects
};

/// \brief Collects Chrome trace-event JSON from many simulation cells and
/// writes a file loadable in Perfetto / chrome://tracing.
///
/// Thread contract: NewStream and WriteJson/ToJson lock internally;
/// individual streams are single-threaded. ToJson must only be called at
/// a quiescent point (no cell still recording).
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Creates a stream owning `num_pids` process tracks. The recorder keeps
  /// ownership; the pointer stays valid for the recorder's lifetime.
  TraceStream* NewStream(std::string_view label, int num_pids);

  /// Streams created so far (creation order).
  size_t num_streams() const;
  /// Total events across all streams.
  size_t num_events() const;

  /// Renders `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Streams
  /// are emitted in creation order (stable for serial runs; for parallel
  /// runs the per-stream contents are stable, stream order is not).
  std::string ToJson() const;

  Status WriteJson(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceStream>> streams_;
  int next_pid_base_ = 0;
  uint64_t next_id_base_ = 0;
};

}  // namespace dmr::obs

#endif  // DMR_OBS_TRACE_H_
