#ifndef DMR_OBS_REPORT_H_
#define DMR_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace dmr::obs {

/// \brief A per-run structured summary sink: metric snapshot + resource
/// time-series digests + arbitrary pre-rendered JSON sections (e.g. the
/// job-history timeline), rendered as a text table or a JSON document.
///
/// The obs layer deliberately knows nothing about mapred/cluster types;
/// the Testbed does the glue (it digests ClusterMonitor's TimeSeries into
/// SeriesStats and attaches JobHistory::ToJson() as a raw section).
class Report {
 public:
  /// Digest of one sampled time series (e.g. ClusterMonitor cpu_percent).
  struct SeriesStats {
    std::string name;
    std::string unit;
    size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// Free-form run metadata (driver name, cell grid, threads, ...).
  void SetInfo(std::string_view key, std::string_view value);
  void SetInfo(std::string_view key, int64_t value);
  void SetInfo(std::string_view key, double value);

  /// Attaches the merged metric snapshot (counters/gauges/histograms).
  void SetSnapshot(MetricsRegistry::Snapshot snapshot);

  void AddSeries(SeriesStats stats);

  /// Attaches a pre-rendered JSON value under `name` in the JSON output;
  /// ignored by the text rendering. `json` must be a valid JSON value.
  void AddJsonSection(std::string_view name, std::string json);

  /// Fixed-width text tables (info, counters, histograms, series).
  std::string ToText() const;

  /// `{"info": {...}, "counters": {...}, "gauges": {...},
  ///   "histograms": [...], "series": [...], <raw sections...>}`.
  std::string ToJson() const;

  Status WriteJson(const std::string& path) const;

  const MetricsRegistry::Snapshot& snapshot() const { return snapshot_; }

 private:
  struct InfoEntry {
    std::string key;
    std::string text;  // human rendering
    std::string json;  // JSON value rendering
  };

  std::vector<InfoEntry> info_;
  MetricsRegistry::Snapshot snapshot_;
  std::vector<SeriesStats> series_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace dmr::obs

#endif  // DMR_OBS_REPORT_H_
