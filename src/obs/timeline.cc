#include "obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dmr::obs {

namespace {

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

/// One polled series: a callback plus its ring of (t, value, rate) points.
struct Timeline::ProbeSeries {
  std::string name;
  std::string unit;
  SeriesKind kind = SeriesKind::kGauge;
  std::function<double()> fn;
  double prev_value = 0.0;

  struct Point {
    double t;
    double value;
    double rate;
  };
  std::deque<Point> points;

  // Whole-run running stats: the ring above keeps only the last max_ticks
  // points, so extrema must be accumulated here or eviction would blind
  // cross-run regression checks to everything before the final window.
  double min_value = 0.0;
  double max_value = 0.0;
  double sum_value = 0.0;
  double t_at_max = 0.0;
  size_t sampled_ticks = 0;
};

/// Rolling dense bucket counts for one (series, window) pair.
struct Timeline::WindowState {
  std::vector<uint64_t> counts;  // dense, HistogramData::kNumBuckets
  uint64_t total = 0;
  // Occupied-bucket bounds: the percentile scan walks [lo_bucket,
  // hi_bucket] instead of all ~4k buckets. Only ever widened (evictions
  // may leave the bounds conservative), so they bound — never clip — the
  // live range; a series that stays in one octave scans a handful of
  // buckets per tick instead of the whole dense array.
  int lo_bucket = HistogramData::kNumBuckets;
  int hi_bucket = -1;

  struct Point {
    double t;
    uint64_t count;
    double p50, p90, p99;
  };
  std::deque<Point> points;

  // Whole-run maxima across every closed tick (survive ring eviction).
  uint64_t count_max = 0;
  double p50_max = 0.0;
  double p90_max = 0.0;
  double p99_max = 0.0;
};

struct Timeline::WindowedSeries {
  std::string name;
  std::string unit;
  /// Observations of the *open* tick: (bucket, count) pairs, unsorted and
  /// possibly duplicated — merged once when the tick closes.
  std::vector<std::pair<int, uint64_t>> open_tick;
  /// Merged per-tick deltas of the last max-window ticks, oldest first.
  std::deque<std::vector<std::pair<int, uint64_t>>> history;
  std::vector<WindowState> windows;  // parallel to options_.windows
};

Timeline::Timeline(const TimelineOptions& options) : options_(options) {
  DMR_CHECK_GT(options_.interval, 0.0) << "timeline interval";
  DMR_CHECK_GT(options_.max_ticks, 0u) << "timeline ring capacity";
  window_ticks_.reserve(options_.windows.size());
  for (double w : options_.windows) {
    DMR_CHECK_GT(w, 0.0) << "timeline window";
    // Round up to whole ticks so a 10s window at a 3s cadence still
    // covers at least 10 simulated seconds.
    window_ticks_.push_back(
        static_cast<size_t>(std::ceil(w / options_.interval - 1e-9)));
  }
}

Timeline::~Timeline() = default;

void Timeline::AddProbe(std::string_view name, std::string_view unit,
                        SeriesKind kind, std::function<double()> fn) {
  for (const auto& p : probes_) {
    if (p->name == name) return;  // dedupe; first registration wins
  }
  auto series = std::make_unique<ProbeSeries>();
  series->name = std::string(name);
  series->unit = std::string(unit);
  series->kind = kind;
  series->fn = std::move(fn);
  // Seed the rate baseline from the registration-time value so the first
  // tick reports the delta since attach, not since an imaginary zero.
  series->prev_value = series->fn ? series->fn() : 0.0;
  probes_.push_back(std::move(series));
}

Timeline::WindowedId Timeline::AddWindowed(std::string_view name,
                                           std::string_view unit) {
  for (uint32_t i = 0; i < windowed_.size(); ++i) {
    if (windowed_[i]->name == name) return WindowedId{i};
  }
  auto series = std::make_unique<WindowedSeries>();
  series->name = std::string(name);
  series->unit = std::string(unit);
  series->windows.resize(window_ticks_.size());
  windowed_.push_back(std::move(series));
  return WindowedId{static_cast<uint32_t>(windowed_.size() - 1)};
}

void Timeline::Observe(WindowedId id, double value) {
  if (!id.valid() || id.index >= windowed_.size()) return;
  windowed_[id.index]->open_tick.emplace_back(
      HistogramData::BucketFor(value), uint64_t{1});
}

namespace {

/// Sorts-and-merges an open tick's (bucket, count) pairs in place.
void MergeOpenTick(std::vector<std::pair<int, uint64_t>>* deltas) {
  std::sort(deltas->begin(), deltas->end(),
            [](const std::pair<int, uint64_t>& a,
               const std::pair<int, uint64_t>& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < deltas->size(); ++i) {
    if (out > 0 && (*deltas)[out - 1].first == (*deltas)[i].first) {
      (*deltas)[out - 1].second += (*deltas)[i].second;
    } else {
      (*deltas)[out++] = (*deltas)[i];
    }
  }
  deltas->resize(out);
}

/// p50/p90/p99 by one pass over the dense counts in [lo, hi] (nearest
/// rank; answers are bucket lower edges — the window has no exact min/max
/// to clamp to, unlike HistogramData::Percentile).
void ScanPercentiles(const std::vector<uint64_t>& counts, uint64_t total,
                     int lo, int hi, double* p50, double* p90, double* p99) {
  *p50 = *p90 = *p99 = 0.0;
  if (total == 0 || counts.empty()) return;
  if (lo < 0) lo = 0;
  if (hi >= static_cast<int>(counts.size())) {
    hi = static_cast<int>(counts.size()) - 1;
  }
  auto rank = [total](double q) -> uint64_t {
    auto r = static_cast<uint64_t>(
        std::ceil(q / 100.0 * static_cast<double>(total)));
    return r == 0 ? 1 : r;
  };
  const uint64_t r50 = rank(50.0), r90 = rank(90.0), r99 = rank(99.0);
  uint64_t cum = 0;
  bool need50 = true, need90 = true, need99 = true;
  for (int b = lo; b <= hi; ++b) {
    if (counts[b] == 0) continue;
    cum += counts[b];
    const double edge = HistogramData::BucketLowerEdge(b);
    if (need50 && cum >= r50) {
      *p50 = edge;
      need50 = false;
    }
    if (need90 && cum >= r90) {
      *p90 = edge;
      need90 = false;
    }
    if (need99 && cum >= r99) {
      *p99 = edge;
      need99 = false;
    }
    if (!need99) break;
  }
}

}  // namespace

void Timeline::Sample(double now) {
  DMR_CHECK(!sealed_) << "Timeline::Sample after Seal";
  DMR_CHECK_GT(now, last_tick_time_) << "timeline ticks must move forward";
  const double dt = now - last_tick_time_;

  for (auto& probe : probes_) {
    const double value = probe->fn ? probe->fn() : 0.0;
    const double rate = (value - probe->prev_value) / dt;
    probe->prev_value = value;
    probe->points.push_back({now, value, rate});
    if (probe->points.size() > options_.max_ticks) probe->points.pop_front();
    if (probe->sampled_ticks == 0) {
      probe->min_value = value;
      probe->max_value = value;
      probe->t_at_max = now;
    } else {
      probe->min_value = std::min(probe->min_value, value);
      if (value > probe->max_value) {
        probe->max_value = value;
        probe->t_at_max = now;
      }
    }
    probe->sum_value += value;
    ++probe->sampled_ticks;
  }

  const size_t max_window =
      window_ticks_.empty()
          ? 0
          : *std::max_element(window_ticks_.begin(), window_ticks_.end());
  for (auto& series : windowed_) {
    MergeOpenTick(&series->open_tick);
    series->history.push_back(std::move(series->open_tick));
    series->open_tick.clear();
    for (size_t w = 0; w < window_ticks_.size(); ++w) {
      WindowState& state = series->windows[w];
      if (state.counts.empty()) {
        state.counts.resize(HistogramData::kNumBuckets, 0);
      }
      for (const auto& [bucket, count] : series->history.back()) {
        state.counts[static_cast<size_t>(bucket)] += count;
        state.total += count;
        if (bucket < state.lo_bucket) state.lo_bucket = bucket;
        if (bucket > state.hi_bucket) state.hi_bucket = bucket;
      }
      if (series->history.size() > window_ticks_[w]) {
        const auto& departing =
            series->history[series->history.size() - 1 - window_ticks_[w]];
        for (const auto& [bucket, count] : departing) {
          DMR_CHECK_GE(state.counts[static_cast<size_t>(bucket)], count);
          state.counts[static_cast<size_t>(bucket)] -= count;
          state.total -= count;
        }
      }
      double p50, p90, p99;
      ScanPercentiles(state.counts, state.total, state.lo_bucket,
                      state.hi_bucket, &p50, &p90, &p99);
      state.points.push_back({now, state.total, p50, p90, p99});
      if (state.points.size() > options_.max_ticks) state.points.pop_front();
      state.count_max = std::max(state.count_max, state.total);
      state.p50_max = std::max(state.p50_max, p50);
      state.p90_max = std::max(state.p90_max, p90);
      state.p99_max = std::max(state.p99_max, p99);
    }
    if (series->history.size() > max_window && !series->history.empty()) {
      series->history.pop_front();
    }
  }

  if (ticks_ >= options_.max_ticks) ++dropped_ticks_;
  ++ticks_;
  last_tick_time_ = now;
}

bool Timeline::LatestWindowStat(std::string_view series, double window,
                                double q, double* out) const {
  for (const auto& s : windowed_) {
    if (s->name != series) continue;
    for (size_t w = 0; w < options_.windows.size(); ++w) {
      if (std::fabs(options_.windows[w] - window) > 1e-9) continue;
      const WindowState& state = s->windows[w];
      if (state.points.empty()) return false;
      const WindowState::Point& p = state.points.back();
      if (q == 50.0) {
        *out = p.p50;
      } else if (q == 90.0) {
        *out = p.p90;
      } else if (q == 99.0) {
        *out = p.p99;
      } else {
        return false;
      }
      return true;
    }
    return false;
  }
  return false;
}

bool Timeline::LatestProbeValue(std::string_view series, double* out) const {
  for (const auto& p : probes_) {
    if (p->name != series) continue;
    if (p->points.empty()) return false;
    *out = p->points.back().value;
    return true;
  }
  return false;
}

void Timeline::Seal(double now) {
  DMR_CHECK(!sealed_) << "Timeline sealed twice";
  sealed_ = true;
  sealed_at_ = now;
}

std::string Timeline::ToJson() const {
  DMR_CHECK(sealed_) << "Timeline::ToJson before Seal";
  std::string out = "{\"ticks\": " + std::to_string(ticks_) +
                    ", \"dropped_ticks\": " + std::to_string(dropped_ticks_) +
                    ", \"sealed_at\": " + Num(sealed_at_);

  // Emission iterates index vectors sorted by series name — registration
  // order is a program detail, not part of the output contract.
  std::vector<const ProbeSeries*> probes;
  probes.reserve(probes_.size());
  for (const auto& p : probes_) probes.push_back(p.get());
  std::sort(probes.begin(), probes.end(),
            [](const ProbeSeries* a, const ProbeSeries* b) {
              return a->name < b->name;
            });
  out += ",\n     \"series\": [";
  bool first = true;
  for (const ProbeSeries* p : probes) {
    if (!first) out += ",";
    first = false;
    const double mean = p->sampled_ticks > 0
                            ? p->sum_value /
                                  static_cast<double>(p->sampled_ticks)
                            : 0.0;
    out += "\n      {\"name\": " + json::JsonQuote(p->name) +
           ", \"unit\": " + json::JsonQuote(p->unit) + ", \"kind\": " +
           (p->kind == SeriesKind::kCounter ? "\"counter\"" : "\"gauge\"") +
           ",\n       \"summary\": {\"ticks\": " +
           std::to_string(p->sampled_ticks) + ", \"min\": " +
           Num(p->min_value) + ", \"max\": " + Num(p->max_value) +
           ", \"mean\": " + Num(mean) + ", \"last\": " +
           Num(p->prev_value) + ", \"t_at_max\": " + Num(p->t_at_max) +
           "}, \"points\": [";
    bool first_point = true;
    for (const ProbeSeries::Point& point : p->points) {
      if (!first_point) out += ", ";
      first_point = false;
      out += "[" + Num(point.t) + ", " + Num(point.value) + ", " +
             Num(point.rate) + "]";
    }
    out += "]}";
  }
  out += first ? "]" : "\n     ]";

  std::vector<const WindowedSeries*> windowed;
  windowed.reserve(windowed_.size());
  for (const auto& s : windowed_) windowed.push_back(s.get());
  std::sort(windowed.begin(), windowed.end(),
            [](const WindowedSeries* a, const WindowedSeries* b) {
              return a->name < b->name;
            });
  out += ",\n     \"windowed\": [";
  first = true;
  for (const WindowedSeries* s : windowed) {
    if (!first) out += ",";
    first = false;
    out += "\n      {\"name\": " + json::JsonQuote(s->name) +
           ", \"unit\": " + json::JsonQuote(s->unit) + ", \"windows\": [";
    bool first_window = true;
    for (size_t w = 0; w < options_.windows.size(); ++w) {
      if (!first_window) out += ",";
      first_window = false;
      const WindowState& state = s->windows[w];
      out += "\n       {\"window\": " + Num(options_.windows[w]) +
             ", \"summary\": {\"count_max\": " +
             std::to_string(state.count_max) + ", \"p50_max\": " +
             Num(state.p50_max) + ", \"p90_max\": " + Num(state.p90_max) +
             ", \"p99_max\": " + Num(state.p99_max) + "}, \"points\": [";
      bool first_point = true;
      for (const WindowState::Point& point : s->windows[w].points) {
        if (!first_point) out += ", ";
        first_point = false;
        out += "[" + Num(point.t) + ", " + std::to_string(point.count) +
               ", " + Num(point.p50) + ", " + Num(point.p90) + ", " +
               Num(point.p99) + "]";
      }
      out += "]}";
    }
    out += first_window ? "]}" : "\n      ]}";
  }
  out += first ? "]}" : "\n     ]}";
  return out;
}

TimelineCell::TimelineCell(std::string label_in,
                           const TimelineOptions& options)
    : label(std::move(label_in)),
      timeline(options),
      flight(options.flight_capacity, &arena),
      slo(&timeline) {
  slo.AttachFlightRecorder(&flight);
  RegisterFlightRecorderForFatalDump(&flight, label);
}

TimelineCell::~TimelineCell() {
  UnregisterFlightRecorderForFatalDump(&flight);
}

TimelineBook::TimelineBook(const TimelineOptions& options)
    : options_(options) {}

TimelineBook::~TimelineBook() = default;

TimelineCell* TimelineBook::NewCell(std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back(
      std::make_unique<TimelineCell>(std::string(label), options_));
  return cells_.back().get();
}

std::vector<const TimelineCell*> TimelineBook::SortedCells() const {
  std::vector<const TimelineCell*> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted.reserve(cells_.size());
    for (const auto& cell : cells_) sorted.push_back(cell.get());
  }
  // Labels are handed out in nondeterministic order under --threads=N;
  // the driver-provided annotations are the stable identity (same rule as
  // LedgerBook::SortedCells).
  std::sort(sorted.begin(), sorted.end(),
            [](const TimelineCell* a, const TimelineCell* b) {
              if (a->annotations != b->annotations) {
                return a->annotations < b->annotations;
              }
              return a->label < b->label;
            });
  return sorted;
}

namespace {

std::string AnnotationsJson(const TimelineCell& cell) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : cell.annotations) {
    if (!first) out += ", ";
    first = false;
    out += json::JsonQuote(key) + ": " + json::JsonQuote(value);
  }
  out += "}";
  return out;
}

std::string SortedLabel(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cell-%04zu", index);
  return buf;
}

}  // namespace

std::string TimelineBook::ToJson() const {
  std::string out = "{\"interval\": " + Num(options_.interval) +
                    ", \"windows\": [";
  bool first = true;
  for (double w : options_.windows) {
    if (!first) out += ", ";
    first = false;
    out += Num(w);
  }
  out += "],\n  \"cells\": [";
  std::vector<const TimelineCell*> sorted = SortedCells();
  first = true;
  size_t index = 0;
  for (const TimelineCell* cell : sorted) {
    if (!cell->timeline.sealed()) continue;
    if (!first) out += ",";
    first = false;
    out += "\n    {\"label\": " + json::JsonQuote(SortedLabel(index++)) +
           ", \"annotations\": " + AnnotationsJson(*cell) +
           ",\n     \"timeline\": " + cell->timeline.ToJson() +
           ",\n     \"slo\": " + cell->slo.ToJson() +
           ",\n     \"flight_recorder\": " + cell->flight.ToJson() + "}";
  }
  out += first ? "]}" : "\n  ]}\n";
  return out;
}

void TimelineBook::DumpFlightRecorders(std::FILE* out) const {
  std::vector<const TimelineCell*> sorted = SortedCells();
  std::fprintf(out, "=== flight recorder dump (%zu cells) ===\n",
               sorted.size());
  size_t index = 0;
  for (const TimelineCell* cell : sorted) {
    std::string label = SortedLabel(index++);
    // Include the stable annotations so the dump is self-describing.
    std::string ann;
    for (const auto& [key, value] : cell->annotations) {
      ann += " " + key + "=" + value;
    }
    std::fprintf(out, "cell %s%s\n", label.c_str(), ann.c_str());
    cell->flight.DumpText(out, label);
  }
  std::fprintf(out, "=== end flight recorder dump ===\n");
}

}  // namespace dmr::obs
