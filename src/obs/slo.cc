#include "obs/slo.h"

#include <cstdio>

#include "common/json.h"
#include "obs/flight_recorder.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace dmr::obs {

namespace {

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

int SloMonitor::AddRule(const SloRule& rule) {
  rules_.push_back(rule);
  states_.emplace_back();
  return static_cast<int>(rules_.size() - 1);
}

void SloMonitor::Evaluate(double now) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& state = states_[i];
    double measured = 0.0;
    if (!timeline_->LatestWindowStat(rule.series, rule.window, rule.quantile,
                                     &measured)) {
      continue;  // series not registered yet / no closed tick
    }
    ++state.evaluated_ticks;
    const bool breached = measured >= rule.max_value;
    if (breached) ++state.breached_ticks;

    // Breach *instant*: the ok -> breached crossing, not every breached
    // tick — the trace stays readable under a sustained violation.
    if (breached && !state.in_breach) {
      breaches_.push_back({now, static_cast<int32_t>(i), false, measured});
      if (trace_ != nullptr) {
        TraceArgs args;
        args.Set("rule", rule.name);
        args.Set("series", rule.series);
        args.Set("window_s", rule.window);
        args.Set("quantile", rule.quantile);
        args.Set("measured", measured);
        args.Set("max", rule.max_value);
        trace_->Instant(now, trace_pid_, 0, "slo.breach", "slo", args);
      }
      if (flight_ != nullptr) {
        flight_->Append(now, FlightEventKind::kSloBreach, /*job=*/-1,
                        /*node=*/-1, static_cast<int32_t>(i), measured);
      }
    }
    state.in_breach = breached;

    // Error-budget burn: latched once the breached-tick fraction exceeds
    // the budget. Evaluated on the same deterministic tick stream.
    if (!state.budget_burned && rule.budget_fraction < 1.0 &&
        state.evaluated_ticks > 0) {
      const double burn = static_cast<double>(state.breached_ticks) /
                          static_cast<double>(state.evaluated_ticks);
      if (burn > rule.budget_fraction) {
        state.budget_burned = true;
        breaches_.push_back({now, static_cast<int32_t>(i), true, burn});
        if (trace_ != nullptr) {
          TraceArgs args;
          args.Set("rule", rule.name);
          args.Set("burn_fraction", burn);
          args.Set("budget_fraction", rule.budget_fraction);
          trace_->Instant(now, trace_pid_, 0, "slo.budget_burn", "slo", args);
        }
        if (flight_ != nullptr) {
          flight_->Append(now, FlightEventKind::kSloBreach, /*job=*/-1,
                          /*node=*/-1, static_cast<int32_t>(i), burn);
        }
      }
    }
  }
}

std::string SloMonitor::ToJson() const {
  std::string out = "{\"rules\": [";
  bool first = true;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    const RuleState& state = states_[i];
    if (!first) out += ",";
    first = false;
    out += "\n      {\"name\": " + json::JsonQuote(rule.name) +
           ", \"series\": " + json::JsonQuote(rule.series) +
           ", \"window\": " + Num(rule.window) +
           ", \"quantile\": " + Num(rule.quantile) +
           ", \"max\": " + Num(rule.max_value) +
           ", \"budget_fraction\": " + Num(rule.budget_fraction) +
           ", \"evaluated_ticks\": " + std::to_string(state.evaluated_ticks) +
           ", \"breached_ticks\": " + std::to_string(state.breached_ticks) +
           ", \"budget_burned\": " +
           (state.budget_burned ? "true" : "false") + "}";
  }
  out += first ? "]" : "\n    ]";
  out += ", \"breaches\": [";
  first = true;
  for (const Breach& breach : breaches_) {
    if (!first) out += ",";
    first = false;
    out += "\n      {\"t\": " + Num(breach.t) +
           ", \"rule\": " + std::to_string(breach.rule) + ", \"kind\": " +
           (breach.burn ? "\"budget_burn\"" : "\"threshold\"") +
           ", \"measured\": " + Num(breach.measured) + "}";
  }
  out += first ? "]}" : "\n    ]}";
  return out;
}

}  // namespace dmr::obs
