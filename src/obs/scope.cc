#include "obs/scope.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "obs/ledger.h"
#include "obs/timeline.h"

namespace dmr::obs {

StandardMetrics::StandardMetrics(MetricsRegistry* r) {
  if (r == nullptr) return;

  heartbeats = r->RegisterCounter("mapred.heartbeats");
  jobs_submitted = r->RegisterCounter("mapred.jobs_submitted");
  jobs_completed = r->RegisterCounter("mapred.jobs_completed");
  splits_added = r->RegisterCounter("mapred.splits_added");
  maps_launched = r->RegisterCounter("mapred.maps_launched");
  maps_completed = r->RegisterCounter("mapred.maps_completed");
  maps_failed = r->RegisterCounter("mapred.maps_failed");
  backups_launched = r->RegisterCounter("mapred.backups_launched");
  attempts_killed = r->RegisterCounter("mapred.attempts_killed");
  reduces_launched = r->RegisterCounter("mapred.reduces_launched");

  provider_evaluations = r->RegisterCounter("provider.evaluations");
  provider_grows = r->RegisterCounter("provider.grows");
  provider_waits = r->RegisterCounter("provider.waits");
  provider_end_of_input = r->RegisterCounter("provider.end_of_input");

  sched_decisions = r->RegisterCounter("sched.decisions");
  sched_delay_holds = r->RegisterCounter("sched.delay_holds");
  sched_delay_skips = r->RegisterCounter("sched.delay_skips");

  dfs_files_created = r->RegisterCounter("dfs.files_created");
  dfs_partitions_placed = r->RegisterCounter("dfs.partitions_placed");
  dfs_bytes_placed = r->RegisterCounter("dfs.bytes_placed");

  exec_partitions_pruned = r->RegisterCounter("exec.partitions_pruned");
  exec_batches_pruned = r->RegisterCounter("exec.batches_pruned");
  exec_rows_skipped = r->RegisterCounter("exec.rows_skipped");
  exec_index_builds = r->RegisterCounter("exec.index_builds");
  exec_index_hits = r->RegisterCounter("exec.index_hits");
  splits_pruned = r->RegisterCounter("mapred.splits_pruned");

  sim_tie_groups = r->RegisterCounter("sim.tie_groups");
  sim_tie_events = r->RegisterCounter("sim.tie_events");

  task_wait = r->RegisterHistogram("mapred.task_wait", "sim_s");
  task_run = r->RegisterHistogram("mapred.task_run", "sim_s");
  job_response = r->RegisterHistogram("mapred.job_response", "sim_s");
  heartbeat_assign = r->RegisterHistogram("mapred.heartbeat_assign", "us");
  provider_decision = r->RegisterHistogram("provider.decision", "us");

  selectivity_estimate = r->RegisterGauge("provider.selectivity_estimate");
  observed_skew_cv = r->RegisterGauge("provider.observed_skew_cv");
}

// ---------------------------------------------------------------------------
// Scope <-> LedgerCell (out-of-line: scope.h only forward-declares ledger
// types so the hot-path headers stay light).

Ledger* Scope::ledger() const {
  return cell_ != nullptr ? &cell_->ledger : nullptr;
}

EventGraph* Scope::graph() const {
  return cell_ != nullptr ? &cell_->graph : nullptr;
}

Timeline* Scope::timeline() const {
  return tcell_ != nullptr ? &tcell_->timeline : nullptr;
}

FlightRecorder* Scope::flight() const {
  return tcell_ != nullptr ? &tcell_->flight : nullptr;
}

SloMonitor* Scope::slo() const {
  return tcell_ != nullptr ? &tcell_->slo : nullptr;
}

void Scope::Annotate(std::string_view key, std::string_view value) {
  if (cell_ != nullptr) {
    cell_->annotations[std::string(key)] = std::string(value);
  }
  if (tcell_ != nullptr) {
    tcell_->annotations[std::string(key)] = std::string(value);
  }
}

// ---------------------------------------------------------------------------
// Hub

namespace {

std::mutex g_hub_mu;
MetricsRegistry* g_hub_registry = nullptr;
TraceRecorder* g_hub_recorder = nullptr;
LedgerBook* g_hub_book = nullptr;
TimelineBook* g_hub_timelines = nullptr;
std::atomic<bool> g_hub_active{false};
std::atomic<uint64_t> g_hub_cell_seq{0};

}  // namespace

void Hub::Install(MetricsRegistry* registry, TraceRecorder* recorder,
                  LedgerBook* book, TimelineBook* timelines) {
  std::lock_guard<std::mutex> lock(g_hub_mu);
  g_hub_registry = registry;
  g_hub_recorder = recorder;
  g_hub_book = book;
  g_hub_timelines = timelines;
  g_hub_cell_seq.store(0, std::memory_order_relaxed);
  g_hub_active.store(registry != nullptr || recorder != nullptr ||
                         book != nullptr || timelines != nullptr,
                     std::memory_order_release);
}

void Hub::Uninstall() {
  std::lock_guard<std::mutex> lock(g_hub_mu);
  g_hub_active.store(false, std::memory_order_release);
  g_hub_registry = nullptr;
  g_hub_recorder = nullptr;
  g_hub_book = nullptr;
  g_hub_timelines = nullptr;
}

bool Hub::active() { return g_hub_active.load(std::memory_order_acquire); }

MetricsRegistry* Hub::registry() {
  std::lock_guard<std::mutex> lock(g_hub_mu);
  return g_hub_registry;
}

TraceRecorder* Hub::recorder() {
  std::lock_guard<std::mutex> lock(g_hub_mu);
  return g_hub_recorder;
}

LedgerBook* Hub::book() {
  std::lock_guard<std::mutex> lock(g_hub_mu);
  return g_hub_book;
}

TimelineBook* Hub::timeline_book() {
  std::lock_guard<std::mutex> lock(g_hub_mu);
  return g_hub_timelines;
}

std::string Hub::NextCellLabel() {
  uint64_t seq = g_hub_cell_seq.fetch_add(1, std::memory_order_relaxed);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cell-%04llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

// ---------------------------------------------------------------------------

std::unique_ptr<Scope> MakeClusterScope(MetricsRegistry* registry,
                                        TraceRecorder* recorder,
                                        LedgerBook* book,
                                        std::string_view label,
                                        int num_nodes,
                                        int map_slots_per_node,
                                        TimelineBook* timelines) {
  TraceStream* stream = nullptr;
  if (recorder != nullptr) {
    // One pid per node, plus the client/provider track at pid num_nodes.
    stream = recorder->NewStream(label, num_nodes + 1);
    std::string prefix(label);
    for (int n = 0; n < num_nodes; ++n) {
      stream->ProcessName(n, prefix + " node" + std::to_string(n));
    }
    stream->ProcessName(num_nodes, prefix + " client");
  }
  LedgerCell* cell = nullptr;
  if (book != nullptr) {
    cell = book->NewCell(std::string(label), num_nodes, map_slots_per_node);
  }
  TimelineCell* tcell = nullptr;
  if (timelines != nullptr) {
    tcell = timelines->NewCell(label);
    if (stream != nullptr) {
      // Breach instants land on the client/provider track.
      tcell->slo.AttachTrace(stream, num_nodes);
    }
  }
  return std::make_unique<Scope>(registry, stream, cell, tcell);
}

}  // namespace dmr::obs
