#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <new>
#include <utility>

#include "common/logging.h"
#include "sim/arena.h"

namespace dmr::obs {

std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSchedule:
      return "schedule";
    case FlightEventKind::kBackup:
      return "backup";
    case FlightEventKind::kPreempt:
      return "preempt";
    case FlightEventKind::kProviderGrow:
      return "provider_grow";
    case FlightEventKind::kProviderWait:
      return "provider_wait";
    case FlightEventKind::kProviderEndOfInput:
      return "provider_end_of_input";
    case FlightEventKind::kSloBreach:
      return "slo_breach";
    case FlightEventKind::kProfSeal:
      return "prof_seal";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity, sim::Arena* arena)
    : arena_(arena), capacity_(capacity == 0 ? 1 : capacity) {
  const size_t bytes = capacity_ * sizeof(FlightEvent);
  void* raw = arena_ != nullptr ? arena_->Allocate(bytes)
                                : ::operator new(bytes);
  ring_ = static_cast<FlightEvent*>(raw);
  // Placement array-new may prepend a cookie; element-wise construction
  // keeps the layout exactly capacity_ * sizeof(FlightEvent).
  for (size_t i = 0; i < capacity_; ++i) new (&ring_[i]) FlightEvent();
}

FlightRecorder::~FlightRecorder() {
  // FlightEvent is trivially destructible; just return the storage.
  const size_t bytes = capacity_ * sizeof(FlightEvent);
  if (arena_ != nullptr) {
    arena_->Deallocate(ring_, bytes);
  } else {
    ::operator delete(ring_);
  }
}

void FlightRecorder::Append(const FlightEvent& event) {
  FlightEvent& slot = ring_[next_seq_ % capacity_];
  slot = event;
  slot.seq = next_seq_;
  ++next_seq_;
}

size_t FlightRecorder::size() const {
  return next_seq_ < capacity_ ? static_cast<size_t>(next_seq_) : capacity_;
}

uint64_t FlightRecorder::dropped() const {
  return next_seq_ < capacity_ ? 0 : next_seq_ - capacity_;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  const size_t n = size();
  out.reserve(n);
  const uint64_t first = next_seq_ - n;
  for (uint64_t seq = first; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

void FlightRecorder::DumpText(std::FILE* out, std::string_view label) const {
  std::fprintf(out,
               "flight[%.*s] capacity=%zu appended=%llu dropped=%llu\n",
               static_cast<int>(label.size()), label.data(), capacity_,
               static_cast<unsigned long long>(appended()),
               static_cast<unsigned long long>(dropped()));
  for (const FlightEvent& e : Snapshot()) {
    std::string_view kind = FlightEventKindName(e.kind);
    std::fprintf(out,
                 "flight[%.*s] seq=%llu t=%.6f %.*s job=%d node=%d "
                 "detail=%d value=%.6g\n",
                 static_cast<int>(label.size()), label.data(),
                 static_cast<unsigned long long>(e.seq), e.t,
                 static_cast<int>(kind.size()), kind.data(), e.job, e.node,
                 e.detail, e.value);
  }
}

std::string FlightRecorder::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"capacity\": %zu, \"appended\": %llu, \"dropped\": %llu, "
                "\"events\": [",
                capacity_, static_cast<unsigned long long>(appended()),
                static_cast<unsigned long long>(dropped()));
  std::string out = buf;
  bool first = true;
  for (const FlightEvent& e : Snapshot()) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n      {\"seq\": %llu, \"t\": %.17g, \"kind\": \"%.*s\", "
                  "\"job\": %d, \"node\": %d, \"detail\": %d, "
                  "\"value\": %.17g}",
                  static_cast<unsigned long long>(e.seq), e.t,
                  static_cast<int>(FlightEventKindName(e.kind).size()),
                  FlightEventKindName(e.kind).data(), e.job, e.node, e.detail,
                  e.value);
    out += buf;
  }
  out += first ? "]}" : "\n    ]}";
  return out;
}

namespace {

struct RegisteredRecorder {
  const FlightRecorder* recorder;
  std::string label;
  uint64_t order;  // registration tiebreak for duplicate labels
};

std::mutex& FatalDumpMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<RegisteredRecorder>& FatalDumpList() {
  static std::vector<RegisteredRecorder>* list =
      new std::vector<RegisteredRecorder>;
  return *list;
}

void FatalDumpHook() { DumpRegisteredFlightRecorders(stderr); }

}  // namespace

void RegisterFlightRecorderForFatalDump(const FlightRecorder* recorder,
                                        std::string label) {
  std::lock_guard<std::mutex> lock(FatalDumpMutex());
  std::vector<RegisteredRecorder>& list = FatalDumpList();
  static uint64_t next_order = 0;
  list.push_back({recorder, std::move(label), next_order++});
  Logging::set_fatal_hook(&FatalDumpHook);
}

void UnregisterFlightRecorderForFatalDump(const FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(FatalDumpMutex());
  std::vector<RegisteredRecorder>& list = FatalDumpList();
  list.erase(std::remove_if(list.begin(), list.end(),
                            [recorder](const RegisteredRecorder& r) {
                              return r.recorder == recorder;
                            }),
             list.end());
  if (list.empty() && Logging::fatal_hook() == &FatalDumpHook) {
    Logging::set_fatal_hook(nullptr);
  }
}

void DumpRegisteredFlightRecorders(std::FILE* out) {
  // The fatal hook may fire on any thread; take the lock so a concurrent
  // register/unregister cannot invalidate the list under us. (The failing
  // thread itself never holds it here — registration sites are setup-time.)
  std::lock_guard<std::mutex> lock(FatalDumpMutex());
  std::vector<RegisteredRecorder> sorted = FatalDumpList();
  std::sort(sorted.begin(), sorted.end(),
            [](const RegisteredRecorder& a, const RegisteredRecorder& b) {
              if (a.label != b.label) return a.label < b.label;
              return a.order < b.order;
            });
  std::fprintf(out, "=== flight recorder dump (%zu cells) ===\n",
               sorted.size());
  for (const RegisteredRecorder& r : sorted) {
    r.recorder->DumpText(out, r.label);
  }
  std::fprintf(out, "=== end flight recorder dump ===\n");
}

}  // namespace dmr::obs
