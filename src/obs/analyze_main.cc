// dmr-analyze: cross-run analysis of obs::Report JSON files.
//
// Ingests N reports produced by the bench drivers' --metrics flag, joins
// their ledger / critical-path cells by (driver, cell, policy, z) and
// renders a comparison matrix; with --baseline it diffs the join against a
// checked-in configs/baselines/*.json and exits nonzero on regression.
//
// Usage:
//   dmr-analyze [flags] report.json [report2.json ...]
//     --markdown[=FILE]    comparison matrix as markdown (default: stdout)
//     --json=FILE          comparison matrix as JSON
//     --baseline=FILE      diff against a baseline; exit 1 on regression
//     --emit-baseline=FILE write a fresh baseline from these reports
//     --rel-tolerance=X    default relative tolerance for --emit-baseline
//
//   dmr-analyze timeline [flags] timeline.json [timeline2.json ...]
//     Joins the bench drivers' --timeline documents instead: markdown
//     sparkline/extrema tables per cell, and --baseline diffs per-window
//     percentile regression bands (p50/p90/p99 maxima, counts) plus probe
//     extrema. Same flags as above except --json.
//
//   dmr-analyze profile [flags] metrics.json [metrics2.json ...]
//     Reads the "prof" section of --profile runs' metrics files: top-N
//     self-time tables (--top=N), cross-run self-time matrices, collapsed
//     flamegraph re-emission (--collapsed=FILE) and per-phase regression
//     bands (--baseline / --emit-baseline). Same flags as above except
//     --json, plus --top and --collapsed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/analysis.h"

namespace {

using dmr::Result;
using dmr::Status;
using dmr::obs::analysis::BaselineReport;
using dmr::obs::analysis::ProfileRunData;
using dmr::obs::analysis::RunData;
using dmr::obs::analysis::TimelineRunData;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [timeline|profile] [--markdown[=FILE]] "
               "[--json=FILE] [--baseline=FILE] [--emit-baseline=FILE] "
               "[--rel-tolerance=X] [--top=N] [--collapsed=FILE] "
               "report.json [report2.json ...]\n",
               argv0);
  std::exit(2);
}

void DieOn(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "dmr-analyze: %s: %s\n", what,
               status.ToString().c_str());
  std::exit(2);
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IoError("short write " + path);
  return Status::OK();
}

Result<std::string> Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read error on " + path);
  return text;
}

/// The `dmr-analyze timeline` subcommand: same flag surface as the report
/// mode (minus --json), over --timeline documents.
int TimelineMain(const char* argv0, const std::vector<std::string>& paths,
                 const std::string& markdown_path, bool want_markdown,
                 const std::string& baseline_path,
                 const std::string& emit_baseline_path,
                 double rel_tolerance) {
  if (paths.empty()) Usage(argv0);
  std::vector<TimelineRunData> runs;
  runs.reserve(paths.size());
  for (const std::string& path : paths) {
    Result<TimelineRunData> run =
        dmr::obs::analysis::LoadTimelineFile(path);
    DieOn(run.status(), path.c_str());
    runs.push_back(std::move(run).ValueUnsafe());
  }

  bool render_markdown = want_markdown ||
                         (baseline_path.empty() && emit_baseline_path.empty());
  if (render_markdown) {
    std::string markdown =
        dmr::obs::analysis::RenderTimelineMarkdown(runs);
    if (markdown_path.empty()) {
      std::fputs(markdown.c_str(), stdout);
    } else {
      DieOn(WriteFile(markdown_path, markdown), markdown_path.c_str());
      std::printf("timeline markdown written to %s\n",
                  markdown_path.c_str());
    }
  }
  if (!emit_baseline_path.empty()) {
    DieOn(WriteFile(
              emit_baseline_path,
              dmr::obs::analysis::EmitTimelineBaseline(runs, rel_tolerance)),
          emit_baseline_path.c_str());
    std::printf("timeline baseline written to %s\n",
                emit_baseline_path.c_str());
  }
  if (!baseline_path.empty()) {
    Result<std::string> text = Slurp(baseline_path);
    DieOn(text.status(), baseline_path.c_str());
    Result<dmr::json::JsonValue> baseline = dmr::json::JsonParse(*text);
    DieOn(baseline.status(), baseline_path.c_str());
    Result<BaselineReport> checked =
        dmr::obs::analysis::CheckTimelineBaseline(*baseline, runs);
    DieOn(checked.status(), baseline_path.c_str());
    for (const std::string& note : checked->notes) {
      std::printf("note: %s\n", note.c_str());
    }
    if (!checked->ok()) {
      for (const std::string& failure : checked->failures) {
        std::fprintf(stderr, "REGRESSION: %s\n", failure.c_str());
      }
      std::fprintf(stderr, "dmr-analyze: %zu timeline regression(s) vs %s\n",
                   checked->failures.size(), baseline_path.c_str());
      return 1;
    }
    std::printf("timeline baseline OK: %d metric(s) checked vs %s\n",
                checked->entries_checked, baseline_path.c_str());
  }
  return 0;
}

/// The `dmr-analyze profile` subcommand: host-profile attribution tables,
/// collapsed-stack re-emission and per-phase regression bands.
int ProfileMain(const char* argv0, const std::vector<std::string>& paths,
                const std::string& markdown_path, bool want_markdown,
                const std::string& baseline_path,
                const std::string& emit_baseline_path,
                const std::string& collapsed_path, size_t top_n,
                double rel_tolerance) {
  if (paths.empty()) Usage(argv0);
  std::vector<ProfileRunData> runs;
  runs.reserve(paths.size());
  for (const std::string& path : paths) {
    Result<ProfileRunData> run = dmr::obs::analysis::LoadProfileFile(path);
    DieOn(run.status(), path.c_str());
    runs.push_back(std::move(run).ValueUnsafe());
  }

  bool render_markdown =
      want_markdown || (baseline_path.empty() && emit_baseline_path.empty() &&
                        collapsed_path.empty());
  if (render_markdown) {
    std::string markdown =
        dmr::obs::analysis::RenderProfileMarkdown(runs, top_n);
    if (markdown_path.empty()) {
      std::fputs(markdown.c_str(), stdout);
    } else {
      DieOn(WriteFile(markdown_path, markdown), markdown_path.c_str());
      std::printf("profile markdown written to %s\n", markdown_path.c_str());
    }
  }
  if (!collapsed_path.empty()) {
    DieOn(WriteFile(collapsed_path,
                    dmr::obs::analysis::RenderProfileCollapsed(runs.front())),
          collapsed_path.c_str());
    std::printf("collapsed stacks written to %s\n", collapsed_path.c_str());
  }
  if (!emit_baseline_path.empty()) {
    DieOn(WriteFile(
              emit_baseline_path,
              dmr::obs::analysis::EmitProfileBaseline(runs, rel_tolerance)),
          emit_baseline_path.c_str());
    std::printf("profile baseline written to %s\n",
                emit_baseline_path.c_str());
  }
  if (!baseline_path.empty()) {
    Result<std::string> text = Slurp(baseline_path);
    DieOn(text.status(), baseline_path.c_str());
    Result<dmr::json::JsonValue> baseline = dmr::json::JsonParse(*text);
    DieOn(baseline.status(), baseline_path.c_str());
    Result<BaselineReport> checked =
        dmr::obs::analysis::CheckProfileBaseline(*baseline, runs);
    DieOn(checked.status(), baseline_path.c_str());
    for (const std::string& note : checked->notes) {
      std::printf("note: %s\n", note.c_str());
    }
    if (!checked->ok()) {
      for (const std::string& failure : checked->failures) {
        std::fprintf(stderr, "REGRESSION: %s\n", failure.c_str());
      }
      std::fprintf(stderr, "dmr-analyze: %zu profile regression(s) vs %s\n",
                   checked->failures.size(), baseline_path.c_str());
      return 1;
    }
    std::printf("profile baseline OK: %d metric(s) checked vs %s\n",
                checked->entries_checked, baseline_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string json_path;
  std::string markdown_path;
  std::string emit_baseline_path;
  std::string collapsed_path;
  double rel_tolerance = 0.05;
  long top_n = 30;
  bool want_markdown = false;
  bool timeline_mode = false;
  bool profile_mode = false;
  std::vector<std::string> report_paths;

  int first_arg = 1;
  if (argc > 1 && std::strcmp(argv[1], "timeline") == 0) {
    timeline_mode = true;
    first_arg = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "profile") == 0) {
    profile_mode = true;
    first_arg = 2;
  }
  for (int i = first_arg; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_path = arg + 11;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--markdown") == 0) {
      want_markdown = true;
    } else if (std::strncmp(arg, "--markdown=", 11) == 0) {
      want_markdown = true;
      markdown_path = arg + 11;
    } else if (std::strncmp(arg, "--emit-baseline=", 16) == 0) {
      emit_baseline_path = arg + 16;
    } else if (std::strncmp(arg, "--collapsed=", 12) == 0) {
      collapsed_path = arg + 12;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      char* end = nullptr;
      top_n = std::strtol(arg + 6, &end, 10);
      if (end == arg + 6 || *end != '\0' || top_n <= 0) Usage(argv[0]);
    } else if (std::strncmp(arg, "--rel-tolerance=", 16) == 0) {
      char* end = nullptr;
      rel_tolerance = std::strtod(arg + 16, &end);
      if (end == arg + 16 || *end != '\0' || rel_tolerance < 0) {
        Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--", 2) == 0) {
      Usage(argv[0]);
    } else {
      report_paths.push_back(arg);
    }
  }
  if (report_paths.empty()) Usage(argv[0]);

  if (timeline_mode) {
    if (!json_path.empty()) Usage(argv[0]);
    return TimelineMain(argv[0], report_paths, markdown_path, want_markdown,
                        baseline_path, emit_baseline_path, rel_tolerance);
  }
  if (profile_mode) {
    if (!json_path.empty()) Usage(argv[0]);
    return ProfileMain(argv[0], report_paths, markdown_path, want_markdown,
                       baseline_path, emit_baseline_path, collapsed_path,
                       static_cast<size_t>(top_n), rel_tolerance);
  }
  if (!collapsed_path.empty()) Usage(argv[0]);

  std::vector<RunData> runs;
  runs.reserve(report_paths.size());
  for (const std::string& path : report_paths) {
    Result<RunData> run = dmr::obs::analysis::LoadReportFile(path);
    DieOn(run.status(), path.c_str());
    runs.push_back(std::move(run).ValueUnsafe());
  }

  // Default action: markdown matrix on stdout (unless another output or a
  // baseline check was requested explicitly).
  if (!want_markdown && json_path.empty() && baseline_path.empty() &&
      emit_baseline_path.empty()) {
    want_markdown = true;
  }

  if (want_markdown) {
    std::string markdown =
        dmr::obs::analysis::RenderComparisonMarkdown(runs);
    if (markdown_path.empty()) {
      std::fputs(markdown.c_str(), stdout);
    } else {
      DieOn(WriteFile(markdown_path, markdown), markdown_path.c_str());
      std::printf("comparison markdown written to %s\n",
                  markdown_path.c_str());
    }
  }
  if (!json_path.empty()) {
    DieOn(WriteFile(json_path,
                    dmr::obs::analysis::RenderComparisonJson(runs)),
          json_path.c_str());
    std::printf("comparison JSON written to %s\n", json_path.c_str());
  }
  if (!emit_baseline_path.empty()) {
    DieOn(WriteFile(emit_baseline_path,
                    dmr::obs::analysis::EmitBaseline(runs, rel_tolerance)),
          emit_baseline_path.c_str());
    std::printf("baseline written to %s (curate orderings by hand)\n",
                emit_baseline_path.c_str());
  }

  if (!baseline_path.empty()) {
    Result<std::string> text = Slurp(baseline_path);
    DieOn(text.status(), baseline_path.c_str());
    Result<dmr::json::JsonValue> baseline =
        dmr::json::JsonParse(*text);
    DieOn(baseline.status(), baseline_path.c_str());
    Result<BaselineReport> checked =
        dmr::obs::analysis::CheckBaseline(*baseline, runs);
    DieOn(checked.status(), baseline_path.c_str());
    for (const std::string& note : checked->notes) {
      std::printf("note: %s\n", note.c_str());
    }
    if (!checked->ok()) {
      for (const std::string& failure : checked->failures) {
        std::fprintf(stderr, "REGRESSION: %s\n", failure.c_str());
      }
      std::fprintf(stderr, "dmr-analyze: %zu regression(s) vs %s\n",
                   checked->failures.size(), baseline_path.c_str());
      return 1;
    }
    std::printf("baseline OK: %d metric(s), %d ordering(s) checked vs %s\n",
                checked->entries_checked, checked->orderings_checked,
                baseline_path.c_str());
  }
  return 0;
}
