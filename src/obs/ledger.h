#ifndef DMR_OBS_LEDGER_H_
#define DMR_OBS_LEDGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/critical_path.h"

namespace dmr::obs {

/// Where every simulated slot-second of the run went. The six categories
/// partition `nodes x slots_per_node x makespan` exactly (asserted when the
/// ledger is resolved):
///
///   kUseful       map attempt time that contributed to the LIMIT-k sample
///                 (busy time of completed, non-backup attempts before the
///                 job's sample became satisfiable)
///   kWasted       busy time of completed attempts spent *after* the job's
///                 sample was already satisfiable — the paper's "wasted
///                 work" metric (Section V): splits processed past the
///                 point where k matching records existed
///   kSpeculative  busy time of killed attempts (the losing copies of a
///                 speculative race — whichever copy completes first counts
///                 as useful/wasted) and of failed attempts (work discarded
///                 regardless of timing)
///   kQueueing     free slot time while some job had runnable pending
///                 splits that simply hadn't been scheduled here yet
///   kProviderWait free slot time while the only unfinished jobs were
///                 starved waiting on an Input Provider decision
///   kIdle         free slot time with no demand at all
enum class SlotCategory : uint8_t {
  kUseful = 0,
  kWasted,
  kSpeculative,
  kQueueing,
  kProviderWait,
  kIdle,
};
inline constexpr int kNumSlotCategories = 6;

const char* SlotCategoryName(SlotCategory category);

/// \brief Per-cell slot-time ledger. Records raw slot occupancy events
/// during the simulation (single-threaded, same model as TraceStream) and
/// attributes every slot-second to a SlotCategory at Resolve() time.
///
/// The recording API mirrors the cluster's actual lifecycle:
///  - Node::AcquireMapSlot/ReleaseMapSlot mark busy intervals;
///  - JobTracker reports each attempt's outcome (completed / backup /
///    killed / failed) just before releasing its slot, plus the instant a
///    job's sample first became satisfiable;
///  - JobTracker reports the cluster-wide demand state after every event
///    that can change it (splits pending -> queueing; all mapping jobs
///    starved on the provider -> provider-wait; no demand -> idle);
///  - the scheduler reports delay-scheduling holds (diagnostic only).
///
/// Attribution happens per slot with a two-pointer sweep over the busy
/// intervals and the demand-state step function, so Resolve() is
/// O(events log events) and recording stays allocation-amortized
/// (vector pushes only).
class Ledger {
 public:
  Ledger(int num_nodes, int map_slots_per_node);

  // --- recording ----------------------------------------------------------

  void OnSlotAcquired(int node, int slot, double t);
  void OnSlotReleased(int node, int slot, double t);
  /// Outcome of the attempt occupying (node, slot); must be called before
  /// the matching OnSlotReleased.
  enum class AttemptKind : uint8_t { kCompleted, kKilled, kFailed };
  void OnAttemptOutcome(int node, int slot, int job, AttemptKind kind);
  /// First time `job`'s cumulative matching output reached its LIMIT k.
  void OnSampleSatisfiable(int job, double t);
  /// Cluster-wide demand state for free slots, as a step function of time.
  enum class FreeState : uint8_t { kQueue, kProviderWait, kIdle };
  void OnFreeState(FreeState state, double t);
  void OnDelayHold() { ++delay_holds_; }
  /// The tracker went quiescent (no active jobs). The last such mark wins
  /// and bounds the makespan; cleared again if more work arrives.
  void MarkQuiescent(double t);
  void ClearQuiescent() { quiescent_valid_ = false; }

  /// Closes the ledger at simulated time `t` (testbed teardown). The
  /// makespan becomes the quiescence mark if one is pending, else `t`,
  /// never earlier than the last recorded busy event.
  void Seal(double t);
  bool sealed() const { return sealed_; }

  // --- resolution ---------------------------------------------------------

  struct Totals {
    double seconds[kNumSlotCategories] = {};
    double makespan = 0.0;
    /// nodes x slots_per_node x makespan; the category sum is checked
    /// against this at resolve time.
    double expected_total = 0.0;
    int64_t delay_holds = 0;
    int64_t attempts_completed = 0;
    int64_t attempts_speculative = 0;
    double sum() const {
      double s = 0.0;
      for (double v : seconds) s += v;
      return s;
    }
  };

  /// Attributes every slot-second and asserts the exhaustiveness invariant
  /// (sum == expected_total within float tolerance). Requires Seal().
  Totals Resolve() const;

  int num_nodes() const { return num_nodes_; }
  int map_slots_per_node() const { return map_slots_per_node_; }

 private:
  struct BusyInterval {
    double begin = 0.0;
    double end = -1.0;  // open until released
    int job = -1;
    AttemptKind kind = AttemptKind::kKilled;
    bool outcome_known = false;
  };
  struct FreeTransition {
    double t;
    FreeState state;
  };

  int SlotIndex(int node, int slot) const;

  int num_nodes_;
  int map_slots_per_node_;
  /// Per (node, slot) busy intervals, in time order (slots are serially
  /// reused, so intervals never overlap within one slot).
  std::vector<std::vector<BusyInterval>> busy_;
  std::vector<FreeTransition> free_states_;
  std::map<int, double> satisfiable_;  // job -> first-satisfiable time
  int64_t delay_holds_ = 0;
  double last_event_time_ = 0.0;
  bool quiescent_valid_ = false;
  double quiescent_time_ = 0.0;
  bool sealed_ = false;
  double makespan_ = 0.0;
};

const char* AttemptKindName(Ledger::AttemptKind kind);

/// \brief One experiment cell's observability state: a labelled Ledger plus
/// EventGraph, with driver-provided annotations (policy, z, scale, repeat)
/// used to key cross-run joins in dmr-analyze.
struct LedgerCell {
  LedgerCell(std::string label_in, int num_nodes, int map_slots_per_node)
      : label(std::move(label_in)), ledger(num_nodes, map_slots_per_node) {}

  std::string label;
  /// Sorted key/value annotations ("cell", "policy", "z", ...).
  std::map<std::string, std::string> annotations;
  Ledger ledger;
  EventGraph graph;
};

/// \brief Process-wide collector of LedgerCells, installed on the obs::Hub
/// next to the MetricsRegistry/TraceRecorder. NewCell is thread-safe (cells
/// are created from parallel experiment workers); each cell is then written
/// single-threaded by its own simulation.
///
/// Rendering sorts cells by their annotations (falling back to label), not
/// by creation order, so the emitted JSON is byte-stable under --threads=N.
class LedgerBook {
 public:
  LedgerCell* NewCell(std::string label, int num_nodes,
                      int map_slots_per_node);

  /// `{"cells": [{"label":, "annotations":, "makespan":, "total_slot_seconds":,
  ///   "categories": {...}, "delay_holds":, ...}, ...]}`. Resolves (and
  /// asserts exhaustiveness for) every sealed cell.
  std::string LedgerJson() const;
  /// `{"cells": [{"label":, "annotations":, <EventGraph::AnalysisToJson>}]}`.
  std::string CriticalPathJson() const;

  size_t num_cells() const;

 private:
  std::vector<const LedgerCell*> SortedCells() const;

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<LedgerCell>> cells_;
};

}  // namespace dmr::obs

#endif  // DMR_OBS_LEDGER_H_
