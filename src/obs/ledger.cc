#include "obs/ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json.h"
#include "common/logging.h"

namespace dmr::obs {

namespace {

std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

const char* SlotCategoryName(SlotCategory category) {
  switch (category) {
    case SlotCategory::kUseful: return "useful";
    case SlotCategory::kWasted: return "wasted";
    case SlotCategory::kSpeculative: return "speculative";
    case SlotCategory::kQueueing: return "queueing";
    case SlotCategory::kProviderWait: return "provider_wait";
    case SlotCategory::kIdle: return "idle";
  }
  return "unknown";
}

const char* AttemptKindName(Ledger::AttemptKind kind) {
  switch (kind) {
    case Ledger::AttemptKind::kCompleted: return "completed";
    case Ledger::AttemptKind::kKilled: return "killed";
    case Ledger::AttemptKind::kFailed: return "failed";
  }
  return "unknown";
}

Ledger::Ledger(int num_nodes, int map_slots_per_node)
    : num_nodes_(num_nodes),
      map_slots_per_node_(map_slots_per_node),
      busy_(static_cast<size_t>(num_nodes) * map_slots_per_node) {}

int Ledger::SlotIndex(int node, int slot) const {
  DMR_CHECK(node >= 0 && node < num_nodes_) << "ledger node " << node;
  DMR_CHECK(slot >= 0 && slot < map_slots_per_node_) << "ledger slot "
                                                     << slot;
  return node * map_slots_per_node_ + slot;
}

void Ledger::OnSlotAcquired(int node, int slot, double t) {
  auto& intervals = busy_[SlotIndex(node, slot)];
  DMR_CHECK(intervals.empty() || intervals.back().end >= 0.0)
      << "slot acquired while busy (node " << node << " slot " << slot << ")";
  BusyInterval iv;
  iv.begin = t;
  intervals.push_back(iv);
  last_event_time_ = std::max(last_event_time_, t);
}

void Ledger::OnSlotReleased(int node, int slot, double t) {
  auto& intervals = busy_[SlotIndex(node, slot)];
  DMR_CHECK(!intervals.empty() && intervals.back().end < 0.0)
      << "slot released while free (node " << node << " slot " << slot << ")";
  intervals.back().end = t;
  last_event_time_ = std::max(last_event_time_, t);
}

void Ledger::OnAttemptOutcome(int node, int slot, int job, AttemptKind kind) {
  auto& intervals = busy_[SlotIndex(node, slot)];
  DMR_CHECK(!intervals.empty() && intervals.back().end < 0.0)
      << "attempt outcome on a free slot (node " << node << " slot " << slot
      << ")";
  intervals.back().job = job;
  intervals.back().kind = kind;
  intervals.back().outcome_known = true;
}

void Ledger::OnSampleSatisfiable(int job, double t) {
  satisfiable_.emplace(job, t);  // first call wins
}

void Ledger::OnFreeState(FreeState state, double t) {
  if (!free_states_.empty()) {
    FreeTransition& last = free_states_.back();
    if (last.state == state) return;
    if (last.t == t) {
      last.state = state;
      return;
    }
    DMR_CHECK(t >= last.t) << "free-state transitions must be time-ordered";
  } else if (state == FreeState::kIdle) {
    return;  // idle is the implicit initial state
  }
  free_states_.push_back({t, state});
}

void Ledger::MarkQuiescent(double t) {
  quiescent_valid_ = true;
  quiescent_time_ = std::max(t, last_event_time_);
}

void Ledger::Seal(double t) {
  if (sealed_) return;
  // RunJobToCompletion advances the simulation in coarse chunks, so the
  // teardown clock usually overshoots the real end of work; prefer the
  // tracker's quiescence mark when one is pending.
  makespan_ = quiescent_valid_ ? quiescent_time_ : t;
  makespan_ = std::max(makespan_, last_event_time_);
  sealed_ = true;
}

Ledger::Totals Ledger::Resolve() const {
  DMR_CHECK(sealed_) << "Ledger::Resolve requires Seal()";
  Totals totals;
  totals.makespan = makespan_;
  totals.expected_total =
      static_cast<double>(num_nodes_) * map_slots_per_node_ * makespan_;
  totals.delay_holds = delay_holds_;

  for (const auto& intervals : busy_) {
    double cursor = 0.0;  // start of the current free gap in this slot
    size_t free_idx = 0;  // sweep pointer into free_states_

    auto attribute_free = [&](double a, double b) {
      if (b <= a) return;
      // Advance to the transition governing time `a` (the last one <= a);
      // before any transition the cluster is idle.
      while (free_idx < free_states_.size() && free_states_[free_idx].t <= a) {
        ++free_idx;
      }
      double pos = a;
      FreeState state = free_idx == 0 ? FreeState::kIdle
                                      : free_states_[free_idx - 1].state;
      size_t i = free_idx;
      while (pos < b) {
        double next = i < free_states_.size()
                          ? std::min(free_states_[i].t, b)
                          : b;
        SlotCategory cat = state == FreeState::kQueue
                               ? SlotCategory::kQueueing
                               : state == FreeState::kProviderWait
                                     ? SlotCategory::kProviderWait
                                     : SlotCategory::kIdle;
        totals.seconds[static_cast<int>(cat)] += next - pos;
        pos = next;
        if (i < free_states_.size() && free_states_[i].t <= b) {
          state = free_states_[i].state;
          ++i;
        }
      }
    };

    for (const BusyInterval& iv : intervals) {
      double begin = std::min(iv.begin, makespan_);
      double end = iv.end < 0.0 ? makespan_ : std::min(iv.end, makespan_);
      attribute_free(cursor, begin);
      cursor = std::max(cursor, end);

      if (end <= begin) continue;
      if (iv.outcome_known && iv.kind != AttemptKind::kCompleted) {
        // Killed and failed attempts: discarded work.
        totals.seconds[static_cast<int>(SlotCategory::kSpeculative)] +=
            end - begin;
        ++totals.attempts_speculative;
        continue;
      }
      // Completed (or still-running-at-seal) map work: useful until the
      // job's sample became satisfiable, wasted afterwards. Jobs whose
      // sample never filled (k = 0, or the input ran out first) have no
      // satisfiability instant — all their processing counted.
      ++totals.attempts_completed;
      double sat = makespan_;
      if (auto it = satisfiable_.find(iv.job); it != satisfiable_.end()) {
        sat = it->second;
      }
      double useful_end = std::clamp(sat, begin, end);
      totals.seconds[static_cast<int>(SlotCategory::kUseful)] +=
          useful_end - begin;
      totals.seconds[static_cast<int>(SlotCategory::kWasted)] +=
          end - useful_end;
    }
    attribute_free(cursor, makespan_);
  }

  double tolerance = 1e-6 * std::max(1.0, totals.expected_total);
  DMR_CHECK(std::fabs(totals.sum() - totals.expected_total) <= tolerance)
      << "slot-time ledger is not exhaustive: categories sum to "
      << totals.sum() << " but nodes*slots*makespan = "
      << totals.expected_total;
  return totals;
}

LedgerCell* LedgerBook::NewCell(std::string label, int num_nodes,
                                int map_slots_per_node) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back(std::make_unique<LedgerCell>(std::move(label), num_nodes,
                                                map_slots_per_node));
  return cells_.back().get();
}

size_t LedgerBook::num_cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

std::vector<const LedgerCell*> LedgerBook::SortedCells() const {
  std::vector<const LedgerCell*> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted.reserve(cells_.size());
    for (const auto& cell : cells_) sorted.push_back(cell.get());
  }
  // Cell labels are handed out in nondeterministic order under
  // --threads=N; the driver-provided annotations are the stable identity.
  std::sort(sorted.begin(), sorted.end(),
            [](const LedgerCell* a, const LedgerCell* b) {
              if (a->annotations != b->annotations) {
                return a->annotations < b->annotations;
              }
              return a->label < b->label;
            });
  return sorted;
}

namespace {

std::string AnnotationsJson(const LedgerCell& cell) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : cell.annotations) {
    if (!first) out += ", ";
    first = false;
    out += json::JsonQuote(key) + ": " + json::JsonQuote(value);
  }
  out += "}";
  return out;
}

}  // namespace

namespace {

// Creation-order labels are handed out nondeterministically under
// --threads=N; renumbering by sorted position keeps the emitted JSON
// byte-identical across thread counts.
std::string SortedLabel(size_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "cell-%04zu", index);
  return buf;
}

}  // namespace

std::string LedgerBook::LedgerJson() const {
  std::vector<const LedgerCell*> sorted = SortedCells();
  std::string out = "{\"cells\": [";
  bool first = true;
  size_t index = 0;
  for (const LedgerCell* cell : sorted) {
    if (!cell->ledger.sealed()) continue;
    Ledger::Totals totals = cell->ledger.Resolve();
    if (!first) out += ",";
    first = false;
    out += "\n    {\"label\": " + json::JsonQuote(SortedLabel(index++)) +
           ", \"annotations\": " + AnnotationsJson(*cell) +
           ",\n     \"nodes\": " + std::to_string(cell->ledger.num_nodes()) +
           ", \"map_slots_per_node\": " +
           std::to_string(cell->ledger.map_slots_per_node()) +
           ", \"makespan\": " + Num(totals.makespan) +
           ", \"total_slot_seconds\": " + Num(totals.expected_total) +
           ",\n     \"categories\": {";
    for (int c = 0; c < kNumSlotCategories; ++c) {
      if (c > 0) out += ", ";
      out += std::string("\"") +
             SlotCategoryName(static_cast<SlotCategory>(c)) +
             "\": " + Num(totals.seconds[c]);
    }
    double busy = totals.seconds[0] + totals.seconds[1] + totals.seconds[2];
    double wasted_pct =
        busy > 0.0 ? 100.0 * totals.seconds[1] / busy : 0.0;
    double util_pct = totals.expected_total > 0.0
                          ? 100.0 * busy / totals.expected_total
                          : 0.0;
    out += "},\n     \"wasted_pct\": " + Num(wasted_pct) +
           ", \"utilization_pct\": " + Num(util_pct) +
           ", \"delay_holds\": " + std::to_string(totals.delay_holds) +
           ", \"attempts_completed\": " +
           std::to_string(totals.attempts_completed) +
           ", \"attempts_speculative\": " +
           std::to_string(totals.attempts_speculative) + "}";
  }
  out += first ? "]}" : "\n  ]}";
  return out;
}

std::string LedgerBook::CriticalPathJson() const {
  std::vector<const LedgerCell*> sorted = SortedCells();
  std::string out = "{\"cells\": [";
  bool first = true;
  size_t index = 0;
  for (const LedgerCell* cell : sorted) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"label\": " + json::JsonQuote(SortedLabel(index++)) +
           ", \"annotations\": " + AnnotationsJson(*cell) +
           ",\n     \"analysis\": " + cell->graph.AnalysisToJson() + "}";
  }
  out += first ? "]}" : "\n  ]}";
  return out;
}

}  // namespace dmr::obs
