#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace dmr::obs {

// ---------------------------------------------------------------------------
// HistogramData

int HistogramData::BucketFor(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;  // underflow bucket
  int exp = 0;
  double mantissa = std::frexp(value, &exp);  // mantissa in [0.5, 1)
  if (exp - 1 < kMinExponent) return 0;
  if (exp - 1 > kMaxExponent) exp = kMaxExponent + 1;
  int sub = static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + (exp - 1 - kMinExponent) * kSubBuckets + sub;
}

double HistogramData::BucketLowerEdge(int bucket) {
  if (bucket <= 0) return 0.0;
  int offset = bucket - 1;
  int exp = kMinExponent + offset / kSubBuckets;
  int sub = offset % kSubBuckets;
  double mantissa = 0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets);
  return std::ldexp(mantissa, exp + 1);
}

void HistogramData::Observe(double value) {
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[static_cast<size_t>(BucketFor(value))];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

void HistogramData::MergeFrom(const HistogramData& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

double HistogramData::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  // Nearest-rank: the value at 1-based rank ceil(q/100 * count).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  // The extreme ranks are tracked exactly; skip the bucket approximation.
  if (rank <= 1) return min_;
  if (rank >= count_) return max_;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      return std::clamp(BucketLowerEdge(static_cast<int>(b)), min_, max_);
    }
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

namespace {

std::atomic<uint64_t> g_next_registry_id{1};

}  // namespace

struct MetricsRegistry::Shard {
  std::vector<int64_t> counters;
  std::vector<GaugeCell> gauges;
  std::vector<HistogramData> histograms;
};

namespace {

/// One-entry thread-local cache: the registry a thread last wrote to and
/// its shard. Registry ids are never reused, so a stale cache entry can
/// never alias a new registry.
struct TlsShardCache {
  uint64_t registry_id = 0;
  void* shard = nullptr;
};

thread_local TlsShardCache tls_shard_cache;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

// Cross-shard OK: every touch of the shard list below happens under mu_.
MetricsRegistry::Shard* MetricsRegistry::ShardSlow() DMR_CROSS_SHARD_OK {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  tls_shard_cache = {id_, shard};
  return shard;
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  if (tls_shard_cache.registry_id == id_) {
    return *static_cast<Shard*>(tls_shard_cache.shard);
  }
  return *ShardSlow();
}

CounterHandle MetricsRegistry::RegisterCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      return {static_cast<uint32_t>(i)};
    }
  }
  counter_names_.emplace_back(name);
  return {static_cast<uint32_t>(counter_names_.size() - 1)};
}

GaugeHandle MetricsRegistry::RegisterGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) {
      return {static_cast<uint32_t>(i)};
    }
  }
  gauge_names_.emplace_back(name);
  return {static_cast<uint32_t>(gauge_names_.size() - 1)};
}

HistogramHandle MetricsRegistry::RegisterHistogram(std::string_view name,
                                                   std::string_view unit) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] == name) {
      return {static_cast<uint32_t>(i)};
    }
  }
  histogram_names_.emplace_back(name);
  histogram_units_.emplace_back(unit);
  return {static_cast<uint32_t>(histogram_names_.size() - 1)};
}

void MetricsRegistry::Add(CounterHandle h, int64_t delta) {
  if (!h.valid()) return;
  Shard& shard = LocalShard();
  if (h.index >= shard.counters.size()) shard.counters.resize(h.index + 1, 0);
  shard.counters[h.index] += delta;
}

void MetricsRegistry::Set(GaugeHandle h, double value) {
  if (!h.valid()) return;
  Shard& shard = LocalShard();
  if (h.index >= shard.gauges.size()) shard.gauges.resize(h.index + 1);
  shard.gauges[h.index] = {
      gauge_version_.fetch_add(1, std::memory_order_relaxed) + 1, value};
}

void MetricsRegistry::Observe(HistogramHandle h, double value) {
  if (!h.valid()) return;
  Shard& shard = LocalShard();
  if (h.index >= shard.histograms.size()) shard.histograms.resize(h.index + 1);
  shard.histograms[h.index].Observe(value);
}

size_t MetricsRegistry::num_shards() const DMR_CROSS_SHARD_OK {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

const int64_t* MetricsRegistry::Snapshot::FindCounter(
    std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const MetricsRegistry::HistogramSnapshot*
MetricsRegistry::Snapshot::FindHistogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry::Snapshot
MetricsRegistry::TakeSnapshot() const DMR_CROSS_SHARD_OK {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;

  std::vector<int64_t> counters(counter_names_.size(), 0);
  std::vector<GaugeCell> gauges(gauge_names_.size());
  std::vector<HistogramData> hists(histogram_names_.size());
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < shard->counters.size(); ++i) {
      counters[i] += shard->counters[i];
    }
    for (size_t i = 0; i < shard->gauges.size(); ++i) {
      if (shard->gauges[i].version > gauges[i].version) {
        gauges[i] = shard->gauges[i];
      }
    }
    for (size_t i = 0; i < shard->histograms.size(); ++i) {
      hists[i].MergeFrom(shard->histograms[i]);
    }
  }

  snap.counters.reserve(counters.size());
  for (size_t i = 0; i < counters.size(); ++i) {
    snap.counters.emplace_back(counter_names_[i], counters[i]);
  }
  std::sort(snap.counters.begin(), snap.counters.end());

  snap.gauges.reserve(gauges.size());
  for (size_t i = 0; i < gauges.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], gauges[i].value);
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());

  snap.histograms.reserve(hists.size());
  for (size_t i = 0; i < hists.size(); ++i) {
    HistogramSnapshot h;
    h.name = histogram_names_[i];
    h.unit = histogram_units_[i];
    h.count = hists[i].count();
    h.sum = hists[i].sum();
    h.min = hists[i].min();
    h.max = hists[i].max();
    h.mean = hists[i].Mean();
    h.p50 = hists[i].Percentile(50.0);
    h.p95 = hists[i].Percentile(95.0);
    h.p99 = hists[i].Percentile(99.0);
    snap.histograms.push_back(std::move(h));
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace dmr::obs
