#ifndef DMR_OBS_FLIGHT_RECORDER_H_
#define DMR_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace dmr::sim {
class Arena;
}  // namespace dmr::sim

namespace dmr::obs {

/// What a flight-recorder entry describes. The numeric order is part of
/// the dump format (entries render the kind name, but tests compare
/// against these values), so append new kinds at the end.
enum class FlightEventKind : int32_t {
  kSchedule = 0,          // map attempt launched (value = queued wait, sim s)
  kBackup = 1,            // backup attempt launched (value = primary elapsed)
  kPreempt = 2,           // attempt killed (value = elapsed run time)
  kProviderGrow = 3,      // input provider granted splits (value = count)
  kProviderWait = 4,      // provider said "come back later"
  kProviderEndOfInput = 5,  // provider ended the job's input
  kSloBreach = 6,         // SLO rule crossed into breach (value = measured)
  kProfSeal = 7,          // host profile sealed (detail = timer-stack
                          // imbalances, value = profiled host ms)
};

/// Dump-format name for a kind ("schedule", "backup", ...).
std::string_view FlightEventKindName(FlightEventKind kind);

/// One structured post-mortem event. Plain data on purpose: appends on
/// the simulation hot path must be a handful of stores, and the ring is
/// carved from a sim::Arena whose lifetime the owning cell controls.
struct FlightEvent {
  double t = 0.0;        // virtual time of the decision
  uint64_t seq = 0;      // global append sequence within this recorder
  FlightEventKind kind = FlightEventKind::kSchedule;
  int32_t job = -1;      // job id, -1 when not applicable
  int32_t node = -1;     // node id, -1 when not applicable
  int32_t detail = 0;    // kind-specific (task id, split count, rule index)
  double value = 0.0;    // kind-specific measurement (see FlightEventKind)
};

/// \brief A bounded ring of the last `capacity` FlightEvents.
///
/// The ring storage is carved from a caller-provided sim::Arena when one
/// is given (so multi-cell drivers account the bytes alongside the event
/// arenas), falling back to heap storage otherwise. Appends never
/// allocate after construction. `Snapshot` returns events oldest-first by
/// append sequence — a deterministic order because every append happens at
/// a deterministic point in virtual time (DESIGN.md §15).
///
/// Threading: a recorder belongs to one experiment cell and is only
/// appended from that cell's simulation events (serial, or RunParallel
/// shard-0 bookkeeping + lifecycle handlers of the owning shard), matching
/// the ledger's single-writer-per-cell contract.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity, sim::Arena* arena = nullptr);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Append(const FlightEvent& event);
  void Append(double t, FlightEventKind kind, int32_t job, int32_t node,
              int32_t detail, double value) {
    FlightEvent e;
    e.t = t;
    e.kind = kind;
    e.job = job;
    e.node = node;
    e.detail = detail;
    e.value = value;
    Append(e);
  }

  size_t capacity() const { return capacity_; }
  /// Lifetime appends (>= size()).
  uint64_t appended() const { return next_seq_; }
  /// Events currently retained (min(appended, capacity)).
  size_t size() const;
  /// Appends that evicted an older event (appended - size).
  uint64_t dropped() const;

  /// Retained events, oldest first by seq.
  std::vector<FlightEvent> Snapshot() const;

  /// Human-readable dump (one line per event), oldest first. `label`
  /// prefixes every line so interleaved multi-cell dumps stay
  /// attributable. Safe to call from the fatal hook.
  void DumpText(std::FILE* out, std::string_view label) const;

  /// JSON object: {"capacity":.., "appended":.., "dropped":..,
  /// "events":[{...}]}.
  std::string ToJson() const;

 private:
  sim::Arena* arena_;  // null => heap-backed
  FlightEvent* ring_;
  size_t capacity_;
  uint64_t next_seq_ = 0;
};

/// Process-global registry of recorders to dump when a DMR_CHECK fails.
/// Registration installs the Logging fatal hook on first use; the dump
/// walks recorders sorted by label (then registration order) so the
/// post-mortem text is deterministic however cells were constructed.
void RegisterFlightRecorderForFatalDump(const FlightRecorder* recorder,
                                        std::string label);
void UnregisterFlightRecorderForFatalDump(const FlightRecorder* recorder);

/// The fatal hook body, exposed so drivers (--dump-flight-recorder) and
/// tests can trigger the same dump without dying. Writes to `out`.
void DumpRegisteredFlightRecorders(std::FILE* out);

}  // namespace dmr::obs

#endif  // DMR_OBS_FLIGHT_RECORDER_H_
