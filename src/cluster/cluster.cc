#include "cluster/cluster.h"

#include "common/logging.h"

namespace dmr::cluster {

Cluster::Cluster(sim::Simulation* sim, const ClusterConfig& config)
    : sim_(sim),
      config_(config),
      state_(config.num_nodes, config.map_slots_per_node,
             config.reduce_slots_per_node) {
  DMR_CHECK(config.Validate().ok()) << config.Validate().ToString();
  nodes_.reserve(config.num_nodes);
  for (int i = 0; i < config.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, config, i, &state_));
  }
  network_ = std::make_unique<sim::PsResource>(
      sim, "cluster.network", config.network_bandwidth,
      config.network_stream_cap);
}

double Cluster::CpuUtilizationPercent() const {
  double sum = 0.0;
  for (const auto& n : nodes_) {
    sum += const_cast<Node*>(n.get())->cpu()->Utilization();
  }
  return 100.0 * sum / static_cast<double>(nodes_.size());
}

double Cluster::TotalDiskBytesRead() const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    Node* node = const_cast<Node*>(n.get());
    for (int d = 0; d < node->num_disks(); ++d) {
      total += node->disk(d)->total_delivered();
    }
  }
  return total;
}

}  // namespace dmr::cluster
