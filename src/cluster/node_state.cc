#include "cluster/node_state.h"

#include <limits>

#include "common/logging.h"

namespace dmr::cluster {

NodeStateTable::NodeStateTable(int num_nodes, int map_slots_per_node,
                               int reduce_slots_per_node)
    : num_nodes_(num_nodes),
      map_slots_(map_slots_per_node),
      reduce_slots_(reduce_slots_per_node),
      used_map_(static_cast<std::size_t>(num_nodes), 0),
      map_busy_(static_cast<std::size_t>(num_nodes), 0),
      used_reduce_(static_cast<std::size_t>(num_nodes), 0),
      last_heartbeat_(static_cast<std::size_t>(num_nodes),
                      -std::numeric_limits<double>::infinity()),
      local_launches_(static_cast<std::size_t>(num_nodes), 0),
      remote_launches_(static_cast<std::size_t>(num_nodes), 0) {
  DMR_CHECK_GE(num_nodes, 1);
  DMR_CHECK_GE(map_slots_per_node, 1);
  DMR_CHECK_LE(map_slots_per_node, 64)
      << "map-slot lanes are tracked in one bitmask word";
  DMR_CHECK_GE(reduce_slots_per_node, 0);
}

int NodeStateTable::AcquireMapSlot(int node) {
  DMR_CHECK_LT(used_map_[node], map_slots_) << "node " << node;
  const int slot = std::countr_zero(~map_busy_[node]);
  map_busy_[node] |= uint64_t{1} << slot;
  ++used_map_[node];
  ++total_used_map_;
  return slot;
}

void NodeStateTable::ReleaseMapSlot(int node, int slot) {
  DMR_CHECK_GT(used_map_[node], 0) << "node " << node;
  DMR_CHECK_GE(slot, 0) << "node " << node;
  DMR_CHECK_LT(slot, map_slots_) << "node " << node;
  DMR_CHECK(map_busy_[node] & (uint64_t{1} << slot))
      << "node " << node << " slot " << slot;
  map_busy_[node] &= ~(uint64_t{1} << slot);
  --used_map_[node];
  --total_used_map_;
}

void NodeStateTable::AcquireReduceSlot(int node) {
  DMR_CHECK_LT(used_reduce_[node], reduce_slots_) << "node " << node;
  ++used_reduce_[node];
  ++total_used_reduce_;
}

void NodeStateTable::ReleaseReduceSlot(int node) {
  DMR_CHECK_GT(used_reduce_[node], 0) << "node " << node;
  --used_reduce_[node];
  --total_used_reduce_;
}

}  // namespace dmr::cluster
