#ifndef DMR_CLUSTER_CLUSTER_CONFIG_H_
#define DMR_CLUSTER_CLUSTER_CONFIG_H_

#include <cstdint>

#include "common/status.h"

namespace dmr::cluster {

/// \brief Static description of the simulated cluster.
///
/// Defaults model the paper's testbed (Section V-A): 10 IBM x3650 nodes,
/// each with one 4-core 2.26 GHz processor, 12 GB RAM and four 300 GB disks
/// (40 cores / 40 disks total); 4 map slots per node for the single-user
/// experiments, 16 for the multi-user ones.
struct ClusterConfig {
  int num_nodes = 10;
  int cores_per_node = 4;
  int disks_per_node = 4;
  int map_slots_per_node = 4;
  int reduce_slots_per_node = 2;

  /// Sequential bandwidth of one disk (bytes/s); also the single-stream cap.
  double disk_bandwidth = 80.0e6;

  /// Aggregate cluster interconnect capacity for remote reads + shuffle
  /// (bytes/s) and the per-stream cap (~a third of one GbE link).
  double network_bandwidth = 1.0e9;
  double network_stream_cap = 40.0e6;

  /// CPU demand to parse + evaluate the predicate on one record (seconds of
  /// one core). 750 K records/partition * 6 us = 4.5 s of core time per map
  /// task (~20 MB/s/core of record processing). Chosen so that, as in the
  /// paper's tuning, oversubscribing map slots (16 per 4-core node) still
  /// raises throughput: tasks overlap disk reads and CPU instead of being
  /// purely CPU-bound.
  double cpu_cost_per_record = 6.0e-6;

  /// CPU demand per record on the reduce side (merge + emit).
  double reduce_cpu_cost_per_record = 20.0e-6;

  /// Fixed task launch overhead (JVM spin-up in Hadoop 0.20).
  double task_startup_seconds = 1.0;

  /// TaskTracker heartbeat period (Hadoop 0.20 default: 3 s).
  double heartbeat_interval = 3.0;

  // --- adaptive-layout cost model (DESIGN.md §16) -----------------------

  /// Bytes a columnar/indexed replica reads relative to the row file for
  /// the standard filtered scan (only the predicate's columns).
  double columnar_byte_factor = 0.25;

  /// Floor cost of a stats-read: even a fully pruned split pays for
  /// fetching and evaluating its zone maps.
  double stats_read_bytes = 65536.0;
  double stats_read_records = 64.0;

  /// Sampling period of the cluster monitor (the paper samples at 30 s).
  double monitor_interval = 30.0;

  // --- fault / variance injection (off by default) ----------------------

  /// Probability that a launched map attempt fails after doing its work;
  /// the attempt's split is requeued and retried (Hadoop retries failed
  /// task attempts).
  double map_failure_prob = 0.0;

  /// Probability that a map attempt is a straggler, and the factor by which
  /// a straggler's resource demands are inflated.
  double straggler_prob = 0.0;
  double straggler_slowdown = 3.0;

  /// Seed for the failure/straggler draws (the simulation stays
  /// deterministic).
  uint64_t fault_seed = 1;

  // --- speculative execution (Hadoop backup tasks; off by default) ------

  /// When true, the JobTracker launches a backup attempt for a map task
  /// that has run speculative_slowdown_threshold times longer than the
  /// job's mean completed map (and at least speculative_min_runtime
  /// seconds); the first attempt to finish wins, the other is killed.
  bool speculative_execution = false;
  double speculative_slowdown_threshold = 1.5;
  double speculative_min_runtime = 10.0;

  int total_map_slots() const { return num_nodes * map_slots_per_node; }
  int total_reduce_slots() const { return num_nodes * reduce_slots_per_node; }
  int total_disks() const { return num_nodes * disks_per_node; }
  int total_cores() const { return num_nodes * cores_per_node; }

  /// Validates ranges; returns InvalidArgument on nonsense.
  Status Validate() const;

  /// The paper's single-user setup (4 map slots/node).
  static ClusterConfig SingleUser();

  /// The paper's multi-user setup (16 map slots/node, Section V-D).
  static ClusterConfig MultiUser();
};

}  // namespace dmr::cluster

#endif  // DMR_CLUSTER_CLUSTER_CONFIG_H_
