#include "cluster/node.h"

#include <string>

#include "common/logging.h"
#include "obs/ledger.h"

namespace dmr::cluster {

Node::Node(sim::Simulation* sim, const ClusterConfig& config, int node_id)
    : id_(node_id),
      map_slots_(config.map_slots_per_node),
      reduce_slots_(config.reduce_slots_per_node),
      map_slot_busy_(static_cast<size_t>(config.map_slots_per_node), false),
      sim_(sim) {
  cpu_ = std::make_unique<sim::PsResource>(
      sim, "node" + std::to_string(node_id) + ".cpu",
      static_cast<double>(config.cores_per_node), /*per_request_cap=*/1.0);
  disks_.reserve(config.disks_per_node);
  for (int d = 0; d < config.disks_per_node; ++d) {
    disks_.push_back(std::make_unique<sim::PsResource>(
        sim,
        "node" + std::to_string(node_id) + ".disk" + std::to_string(d),
        config.disk_bandwidth, config.disk_bandwidth));
  }
}

void Node::EmitSlotOccupancy() {
  if (obs_ != nullptr && obs_->trace() != nullptr) {
    obs_->trace()->Counter(sim_->Now(), id_, "map_slots", "used",
                           static_cast<double>(used_map_slots_));
  }
}

int Node::AcquireMapSlot() {
  DMR_CHECK_LT(used_map_slots_, map_slots_) << "node " << id_;
  ++used_map_slots_;
  for (int s = 0; s < map_slots_; ++s) {
    if (!map_slot_busy_[s]) {
      map_slot_busy_[s] = true;
      EmitSlotOccupancy();
      if (obs_ != nullptr) {
        if (obs::Ledger* ledger = obs_->ledger()) {
          ledger->OnSlotAcquired(id_, s, sim_->Now());
        }
      }
      return s;
    }
  }
  DMR_CHECK(false) << "node " << id_ << ": slot count out of sync";
  return -1;
}

void Node::ReleaseMapSlot(int slot) {
  DMR_CHECK_GT(used_map_slots_, 0) << "node " << id_;
  DMR_CHECK_GE(slot, 0) << "node " << id_;
  DMR_CHECK_LT(slot, map_slots_) << "node " << id_;
  DMR_CHECK(map_slot_busy_[slot]) << "node " << id_ << " slot " << slot;
  map_slot_busy_[slot] = false;
  --used_map_slots_;
  EmitSlotOccupancy();
  if (obs_ != nullptr) {
    if (obs::Ledger* ledger = obs_->ledger()) {
      ledger->OnSlotReleased(id_, slot, sim_->Now());
    }
  }
}

void Node::AcquireReduceSlot() {
  DMR_CHECK_LT(used_reduce_slots_, reduce_slots_) << "node " << id_;
  ++used_reduce_slots_;
}

void Node::ReleaseReduceSlot() {
  DMR_CHECK_GT(used_reduce_slots_, 0) << "node " << id_;
  --used_reduce_slots_;
}

}  // namespace dmr::cluster
