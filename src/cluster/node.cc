#include "cluster/node.h"

#include <string>

#include "common/logging.h"
#include "obs/ledger.h"

namespace dmr::cluster {

Node::Node(sim::Simulation* sim, const ClusterConfig& config, int node_id,
           NodeStateTable* state)
    : id_(node_id), state_(state), sim_(sim) {
  cpu_ = std::make_unique<sim::PsResource>(
      sim, "node" + std::to_string(node_id) + ".cpu",
      static_cast<double>(config.cores_per_node), /*per_request_cap=*/1.0);
  disks_.reserve(config.disks_per_node);
  for (int d = 0; d < config.disks_per_node; ++d) {
    disks_.push_back(std::make_unique<sim::PsResource>(
        sim,
        "node" + std::to_string(node_id) + ".disk" + std::to_string(d),
        config.disk_bandwidth, config.disk_bandwidth));
  }
}

void Node::EmitSlotOccupancy() {
  if (obs_ != nullptr && obs_->trace() != nullptr) {
    obs_->trace()->Counter(sim_->Now(), id_, "map_slots", "used",
                           static_cast<double>(used_map_slots()));
  }
}

int Node::AcquireMapSlot() {
  const int slot = state_->AcquireMapSlot(id_);
  EmitSlotOccupancy();
  if (obs_ != nullptr) {
    if (obs::Ledger* ledger = obs_->ledger()) {
      ledger->OnSlotAcquired(id_, slot, sim_->Now());
    }
  }
  return slot;
}

void Node::ReleaseMapSlot(int slot) {
  state_->ReleaseMapSlot(id_, slot);
  EmitSlotOccupancy();
  if (obs_ != nullptr) {
    if (obs::Ledger* ledger = obs_->ledger()) {
      ledger->OnSlotReleased(id_, slot, sim_->Now());
    }
  }
}

void Node::AcquireReduceSlot() { state_->AcquireReduceSlot(id_); }

void Node::ReleaseReduceSlot() { state_->ReleaseReduceSlot(id_); }

}  // namespace dmr::cluster
