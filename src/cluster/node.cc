#include "cluster/node.h"

#include <string>

#include "common/logging.h"

namespace dmr::cluster {

Node::Node(sim::Simulation* sim, const ClusterConfig& config, int node_id)
    : id_(node_id),
      map_slots_(config.map_slots_per_node),
      reduce_slots_(config.reduce_slots_per_node) {
  cpu_ = std::make_unique<sim::PsResource>(
      sim, "node" + std::to_string(node_id) + ".cpu",
      static_cast<double>(config.cores_per_node), /*per_request_cap=*/1.0);
  disks_.reserve(config.disks_per_node);
  for (int d = 0; d < config.disks_per_node; ++d) {
    disks_.push_back(std::make_unique<sim::PsResource>(
        sim,
        "node" + std::to_string(node_id) + ".disk" + std::to_string(d),
        config.disk_bandwidth, config.disk_bandwidth));
  }
}

void Node::AcquireMapSlot() {
  DMR_CHECK_LT(used_map_slots_, map_slots_) << "node " << id_;
  ++used_map_slots_;
}

void Node::ReleaseMapSlot() {
  DMR_CHECK_GT(used_map_slots_, 0) << "node " << id_;
  --used_map_slots_;
}

void Node::AcquireReduceSlot() {
  DMR_CHECK_LT(used_reduce_slots_, reduce_slots_) << "node " << id_;
  ++used_reduce_slots_;
}

void Node::ReleaseReduceSlot() {
  DMR_CHECK_GT(used_reduce_slots_, 0) << "node " << id_;
  --used_reduce_slots_;
}

}  // namespace dmr::cluster
