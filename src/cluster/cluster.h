#ifndef DMR_CLUSTER_CLUSTER_H_
#define DMR_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/node.h"
#include "cluster/node_state.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"

namespace dmr::cluster {

/// \brief The simulated shared-nothing cluster: nodes plus the interconnect.
class Cluster {
 public:
  Cluster(sim::Simulation* sim, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  sim::Simulation* simulation() { return sim_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node* node(int id) { return nodes_[id].get(); }
  const Node* node(int id) const { return nodes_[id].get(); }

  /// Cluster-wide interconnect used for remote reads and shuffle traffic.
  sim::PsResource* network() { return network_.get(); }

  /// The struct-of-arrays hot scheduling state (slot counts, heartbeat
  /// times, locality tallies) shared by the nodes, tracker and schedulers.
  NodeStateTable& state() { return state_; }
  const NodeStateTable& state() const { return state_; }

  int total_map_slots() const { return config_.total_map_slots(); }
  int free_map_slots() const { return state_.total_free_map_slots(); }
  int used_map_slots() const { return state_.total_used_map_slots(); }
  int free_reduce_slots() const { return state_.total_free_reduce_slots(); }

  /// Mean instantaneous CPU utilization across all nodes, in [0, 100] (%).
  double CpuUtilizationPercent() const;

  /// Total bytes delivered by all disks so far (monotone).
  double TotalDiskBytesRead() const;

 private:
  sim::Simulation* sim_;
  ClusterConfig config_;
  NodeStateTable state_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<sim::PsResource> network_;
};

}  // namespace dmr::cluster

#endif  // DMR_CLUSTER_CLUSTER_H_
