#include "cluster/cluster_config.h"

namespace dmr::cluster {

Status ClusterConfig::Validate() const {
  if (num_nodes <= 0) return Status::InvalidArgument("num_nodes must be > 0");
  if (cores_per_node <= 0) {
    return Status::InvalidArgument("cores_per_node must be > 0");
  }
  if (disks_per_node <= 0) {
    return Status::InvalidArgument("disks_per_node must be > 0");
  }
  if (map_slots_per_node <= 0) {
    return Status::InvalidArgument("map_slots_per_node must be > 0");
  }
  if (reduce_slots_per_node <= 0) {
    return Status::InvalidArgument("reduce_slots_per_node must be > 0");
  }
  if (disk_bandwidth <= 0 || network_bandwidth <= 0 ||
      network_stream_cap <= 0) {
    return Status::InvalidArgument("bandwidths must be > 0");
  }
  if (cpu_cost_per_record < 0 || reduce_cpu_cost_per_record < 0) {
    return Status::InvalidArgument("cpu costs must be >= 0");
  }
  if (task_startup_seconds < 0) {
    return Status::InvalidArgument("task_startup_seconds must be >= 0");
  }
  if (heartbeat_interval <= 0 || monitor_interval <= 0) {
    return Status::InvalidArgument("intervals must be > 0");
  }
  if (map_failure_prob < 0 || map_failure_prob >= 1.0) {
    return Status::InvalidArgument("map_failure_prob must be in [0, 1)");
  }
  if (straggler_prob < 0 || straggler_prob > 1.0) {
    return Status::InvalidArgument("straggler_prob must be in [0, 1]");
  }
  if (straggler_slowdown < 1.0) {
    return Status::InvalidArgument("straggler_slowdown must be >= 1");
  }
  if (speculative_slowdown_threshold <= 1.0) {
    return Status::InvalidArgument(
        "speculative_slowdown_threshold must be > 1");
  }
  if (speculative_min_runtime < 0.0) {
    return Status::InvalidArgument("speculative_min_runtime must be >= 0");
  }
  return Status::OK();
}

ClusterConfig ClusterConfig::SingleUser() {
  ClusterConfig config;
  config.map_slots_per_node = 4;
  return config;
}

ClusterConfig ClusterConfig::MultiUser() {
  ClusterConfig config;
  config.map_slots_per_node = 16;
  return config;
}

}  // namespace dmr::cluster
