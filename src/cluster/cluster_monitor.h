#ifndef DMR_CLUSTER_CLUSTER_MONITOR_H_
#define DMR_CLUSTER_CLUSTER_MONITOR_H_

#include "cluster/cluster.h"
#include "common/time_series.h"
#include "sim/simulation.h"

namespace dmr::cluster {

/// \brief Periodically samples cluster resource usage, mirroring the paper's
/// per-node monitoring of CPU utilization (%) and disk reads (KB/s) at 30 s
/// intervals (Section V-D).
class ClusterMonitor {
 public:
  /// Starts sampling immediately; samples every config.monitor_interval.
  explicit ClusterMonitor(Cluster* cluster);

  ~ClusterMonitor();

  /// CPU utilization (%) averaged over all cores, one point per interval.
  const TimeSeries& cpu_percent() const { return cpu_percent_; }

  /// Disk read rate per disk (KB/s) averaged over all disks per interval.
  const TimeSeries& disk_read_kbs() const { return disk_read_kbs_; }

  /// Fraction of occupied map slots (%), one point per interval.
  const TimeSeries& slot_occupancy_percent() const {
    return slot_occupancy_percent_;
  }

  /// Stops sampling (idempotent).
  void Stop();

 private:
  void Sample();

  Cluster* cluster_;
  double interval_;
  double last_disk_bytes_;
  bool stopped_ = false;
  sim::EventHandle next_;
  TimeSeries cpu_percent_;
  TimeSeries disk_read_kbs_;
  TimeSeries slot_occupancy_percent_;
};

}  // namespace dmr::cluster

#endif  // DMR_CLUSTER_CLUSTER_MONITOR_H_
