#include "cluster/cluster_monitor.h"

namespace dmr::cluster {

ClusterMonitor::ClusterMonitor(Cluster* cluster)
    : cluster_(cluster),
      interval_(cluster->config().monitor_interval),
      last_disk_bytes_(cluster->TotalDiskBytesRead()) {
  next_ = cluster_->simulation()->Schedule(
      interval_, sim::EventClass::kBookkeeping, [this] { Sample(); });
}

ClusterMonitor::~ClusterMonitor() { Stop(); }

void ClusterMonitor::Stop() {
  stopped_ = true;
  next_.Cancel();
}

void ClusterMonitor::Sample() {
  if (stopped_) return;
  double now = cluster_->simulation()->Now();
  cpu_percent_.Add(now, cluster_->CpuUtilizationPercent());

  double bytes = cluster_->TotalDiskBytesRead();
  double rate_per_disk =
      (bytes - last_disk_bytes_) / interval_ /
      static_cast<double>(cluster_->config().total_disks()) / 1024.0;
  disk_read_kbs_.Add(now, rate_per_disk);
  last_disk_bytes_ = bytes;

  double occupancy = 100.0 *
                     static_cast<double>(cluster_->used_map_slots()) /
                     static_cast<double>(cluster_->total_map_slots());
  slot_occupancy_percent_.Add(now, occupancy);

  next_ = cluster_->simulation()->Schedule(
      interval_, sim::EventClass::kBookkeeping, [this] { Sample(); });
}

}  // namespace dmr::cluster
