#ifndef DMR_CLUSTER_NODE_STATE_H_
#define DMR_CLUSTER_NODE_STATE_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/affinity.h"

namespace dmr::cluster {

/// \brief Struct-of-arrays storage for the hot per-node scheduling state.
///
/// Every heartbeat the scheduler and tracker consult the same few fields —
/// free map/reduce slots, last-heartbeat time, locality tallies — for many
/// nodes in a row. Keeping those fields inside the Node objects means one
/// pointer chase and a mostly-cold cache line per node per query; at 10k
/// nodes that dominates the scheduling path. This table packs each field
/// into its own contiguous array (indexed by node id) so scans touch dense
/// memory, and maintains cluster-wide totals incrementally so the
/// aggregate queries (Cluster::free_map_slots and friends, the monitor's
/// occupancy sampling) are O(1) instead of O(nodes).
///
/// Node objects remain the cold storage (resources, observability) and
/// delegate their slot bookkeeping here, so the two views cannot diverge.
/// Map-slot lane identity (the trace renders one lane per slot) is kept as
/// a per-node busy bitmask: acquire picks the lowest free lane with a
/// count-trailing-zeros instead of the old linear scan.
///
/// Shard-affine (sim/affinity.h): a table belongs to the experiment cell
/// (and under RunParallel, the shard) that built it; nothing here is
/// synchronized.
class DMR_SHARD_AFFINE NodeStateTable {
 public:
  /// `map_slots_per_node` must be <= 64 (one bitmask word per node).
  NodeStateTable(int num_nodes, int map_slots_per_node,
                 int reduce_slots_per_node);

  int num_nodes() const { return num_nodes_; }
  int map_slots_per_node() const { return map_slots_; }
  int reduce_slots_per_node() const { return reduce_slots_; }

  int used_map_slots(int node) const { return used_map_[node]; }
  int free_map_slots(int node) const { return map_slots_ - used_map_[node]; }
  int used_reduce_slots(int node) const { return used_reduce_[node]; }
  int free_reduce_slots(int node) const {
    return reduce_slots_ - used_reduce_[node];
  }

  /// Acquires the lowest-numbered free map-slot lane on `node` and returns
  /// its index. Callers must check availability first.
  int AcquireMapSlot(int node);
  void ReleaseMapSlot(int node, int slot);
  void AcquireReduceSlot(int node);
  void ReleaseReduceSlot(int node);

  // Cluster-wide aggregates, maintained incrementally: O(1).
  int total_map_slots() const { return num_nodes_ * map_slots_; }
  int total_used_map_slots() const {
    return static_cast<int>(total_used_map_);
  }
  int total_free_map_slots() const {
    return total_map_slots() - static_cast<int>(total_used_map_);
  }
  int total_reduce_slots() const { return num_nodes_ * reduce_slots_; }
  int total_free_reduce_slots() const {
    return total_reduce_slots() - static_cast<int>(total_used_reduce_);
  }

  /// Virtual time of the last heartbeat the tracker processed for `node`
  /// (-inf before the first one); the tracker stamps this on every beat.
  void RecordHeartbeat(int node, double t) { last_heartbeat_[node] = t; }
  double last_heartbeat(int node) const { return last_heartbeat_[node]; }

  /// Locality tally: how many map launches on `node` read their split
  /// locally vs. over the network. The delay-scheduling experiments read
  /// these per node; dmr-analyze reads the totals.
  void RecordMapLaunch(int node, bool local) {
    if (local) {
      ++local_launches_[node];
      ++total_local_launches_;
    } else {
      ++remote_launches_[node];
      ++total_remote_launches_;
    }
  }
  int64_t local_launches(int node) const { return local_launches_[node]; }
  int64_t remote_launches(int node) const { return remote_launches_[node]; }
  int64_t total_local_launches() const { return total_local_launches_; }
  int64_t total_remote_launches() const { return total_remote_launches_; }

 private:
  int num_nodes_;
  int map_slots_;
  int reduce_slots_;
  std::vector<int32_t> used_map_;
  std::vector<uint64_t> map_busy_;  // bit s set = lane s busy
  std::vector<int32_t> used_reduce_;
  std::vector<double> last_heartbeat_;
  std::vector<int64_t> local_launches_;
  std::vector<int64_t> remote_launches_;
  int64_t total_used_map_ = 0;
  int64_t total_used_reduce_ = 0;
  int64_t total_local_launches_ = 0;
  int64_t total_remote_launches_ = 0;
};

}  // namespace dmr::cluster

#endif  // DMR_CLUSTER_NODE_STATE_H_
