#ifndef DMR_CLUSTER_NODE_H_
#define DMR_CLUSTER_NODE_H_

#include <memory>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/node_state.h"
#include "obs/scope.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"

namespace dmr::cluster {

/// \brief One simulated worker machine: CPU cores, disks, and the map/reduce
/// slot bookkeeping that a Hadoop TaskTracker would advertise.
///
/// The hot scheduling fields (slot counts, lane bitmask) live in the
/// cluster's NodeStateTable (struct-of-arrays, scanned by the schedulers);
/// Node is the cold storage — resources and observability — and its slot
/// API delegates to the table so the two views cannot diverge.
class Node {
 public:
  Node(sim::Simulation* sim, const ClusterConfig& config, int node_id,
       NodeStateTable* state);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }

  /// Processor-shared CPU: capacity = cores (core-seconds/s), one task can
  /// use at most one core.
  sim::PsResource* cpu() { return cpu_.get(); }

  sim::PsResource* disk(int disk_id) { return disks_[disk_id].get(); }
  int num_disks() const { return static_cast<int>(disks_.size()); }

  int map_slots() const { return state_->map_slots_per_node(); }
  int reduce_slots() const { return state_->reduce_slots_per_node(); }
  int used_map_slots() const { return state_->used_map_slots(id_); }
  int used_reduce_slots() const { return state_->used_reduce_slots(id_); }
  int free_map_slots() const { return state_->free_map_slots(id_); }
  int free_reduce_slots() const { return state_->free_reduce_slots(id_); }

  /// Acquires the lowest-numbered free map slot and returns its index
  /// (stable per-slot identity — the trace renders one lane per slot).
  /// Callers must check availability first.
  int AcquireMapSlot();
  void ReleaseMapSlot(int slot);
  void AcquireReduceSlot();
  void ReleaseReduceSlot();

  /// Attaches observability (nullable; emits a per-node slot-occupancy
  /// counter track when a trace stream is present).
  void set_obs(obs::Scope* obs) { obs_ = obs; }

 private:
  void EmitSlotOccupancy();

  int id_;
  NodeStateTable* state_;
  sim::Simulation* sim_;
  obs::Scope* obs_ = nullptr;
  std::unique_ptr<sim::PsResource> cpu_;
  std::vector<std::unique_ptr<sim::PsResource>> disks_;
};

}  // namespace dmr::cluster

#endif  // DMR_CLUSTER_NODE_H_
