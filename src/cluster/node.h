#ifndef DMR_CLUSTER_NODE_H_
#define DMR_CLUSTER_NODE_H_

#include <memory>
#include <vector>

#include "cluster/cluster_config.h"
#include "obs/scope.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"

namespace dmr::cluster {

/// \brief One simulated worker machine: CPU cores, disks, and the map/reduce
/// slot bookkeeping that a Hadoop TaskTracker would advertise.
class Node {
 public:
  Node(sim::Simulation* sim, const ClusterConfig& config, int node_id);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }

  /// Processor-shared CPU: capacity = cores (core-seconds/s), one task can
  /// use at most one core.
  sim::PsResource* cpu() { return cpu_.get(); }

  sim::PsResource* disk(int disk_id) { return disks_[disk_id].get(); }
  int num_disks() const { return static_cast<int>(disks_.size()); }

  int map_slots() const { return map_slots_; }
  int reduce_slots() const { return reduce_slots_; }
  int used_map_slots() const { return used_map_slots_; }
  int used_reduce_slots() const { return used_reduce_slots_; }
  int free_map_slots() const { return map_slots_ - used_map_slots_; }
  int free_reduce_slots() const { return reduce_slots_ - used_reduce_slots_; }

  /// Acquires the lowest-numbered free map slot and returns its index
  /// (stable per-slot identity — the trace renders one lane per slot).
  /// Callers must check availability first.
  int AcquireMapSlot();
  void ReleaseMapSlot(int slot);
  void AcquireReduceSlot();
  void ReleaseReduceSlot();

  /// Attaches observability (nullable; emits a per-node slot-occupancy
  /// counter track when a trace stream is present).
  void set_obs(obs::Scope* obs) { obs_ = obs; }

 private:
  void EmitSlotOccupancy();

  int id_;
  int map_slots_;
  int reduce_slots_;
  int used_map_slots_ = 0;
  int used_reduce_slots_ = 0;
  std::vector<bool> map_slot_busy_;
  sim::Simulation* sim_;
  obs::Scope* obs_ = nullptr;
  std::unique_ptr<sim::PsResource> cpu_;
  std::vector<std::unique_ptr<sim::PsResource>> disks_;
};

}  // namespace dmr::cluster

#endif  // DMR_CLUSTER_NODE_H_
