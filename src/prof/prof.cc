#include "prof/prof.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

// The prof seam is, with common/host_clock, one of the two sanctioned homes
// for raw monotonic-clock reads (DESIGN.md §17). It deliberately bypasses
// HostClock: profiles must stay useful under DMR_HOST_CLOCK=frozen, and prof
// timings never feed a digest-checked output.
// dmr-lint: allow(wall-clock) prof seam wraps the raw clock (DESIGN.md §17)
#include <chrono>

namespace dmr::prof {

namespace {

// ---------------------------------------------------------------------------
// Phase registry: dense ids for (subsystem, phase) names. Registration is
// rare (static locals at call sites); lookups after that are array indexing.
// ---------------------------------------------------------------------------

struct PhaseRegistry {
  std::mutex mu;
  std::vector<std::string> names;           // id -> "subsystem.phase"
  std::map<std::string, PhaseId> by_name;   // name -> id
};

PhaseRegistry& Phases() {
  static PhaseRegistry* r = new PhaseRegistry();  // leaked: outlives threads
  return *r;
}

// ---------------------------------------------------------------------------
// Per-thread timer trees. The registry owns every state (so trees survive
// thread exit — std::async workers are born and die per batch wave); the
// owning thread touches its state without locks. Collect()/ResetForTest()
// synchronize with worker threads through the g_enabled acquire/release
// flag plus the quiesced-call contract in the header.
// ---------------------------------------------------------------------------

constexpr uint32_t kNoNode = 0xffffffffu;

struct Node {
  PhaseId phase = -1;
  uint32_t first_child = kNoNode;
  uint32_t next_sibling = kNoNode;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = ~0ull;
  uint64_t max_ns = 0;
};

struct Frame {
  uint32_t node;
  uint64_t start_ns;
};

struct ThreadState {
  std::vector<Node> nodes;    // nodes[0] is the virtual root
  std::vector<Frame> stack;
  uint64_t unmatched_ends = 0;

  ThreadState() { nodes.emplace_back(); }

  void Clear() {
    nodes.clear();
    nodes.emplace_back();
    stack.clear();
    unmatched_ends = 0;
  }

  uint32_t ChildOf(uint32_t parent, PhaseId phase) {
    for (uint32_t c = nodes[parent].first_child; c != kNoNode;
         c = nodes[c].next_sibling) {
      if (nodes[c].phase == phase) return c;
    }
    uint32_t id = static_cast<uint32_t>(nodes.size());
    Node fresh;
    fresh.phase = phase;
    fresh.next_sibling = nodes[parent].first_child;
    nodes.push_back(fresh);
    nodes[parent].first_child = id;
    return id;
  }
};

struct StateRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadState>> states;
};

StateRegistry& States() {
  static StateRegistry* r = new StateRegistry();  // leaked: outlives threads
  return *r;
}

ThreadState& LocalState() {
  thread_local ThreadState* state = [] {
    auto owned = std::make_unique<ThreadState>();
    ThreadState* raw = owned.get();
    StateRegistry& reg = States();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.states.push_back(std::move(owned));
    return raw;
  }();
  return *state;
}

// Per-frame clock-pair overhead, measured once at first Enable() and
// subtracted from every recorded duration (clamped at zero) so that ~100 ns
// phases are not dominated by the instrument itself.
double g_calibration_ns = 0.0;
std::once_flag g_calibrate_once;

// Allocation accounting: fixed sites, relaxed atomics.
struct AllocCounters {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> bytes{0};
};
std::array<AllocCounters, static_cast<size_t>(AllocSite::kNumSites)>
    g_alloc_counters;

constexpr std::array<std::string_view,
                     static_cast<size_t>(AllocSite::kNumSites)>
    kAllocSiteNames = {
        "sim.arena.chunk",        "sim.arena.large",
        "sim.callback.spill",     "exec.columnar.build",
        "tpch.dataset_cache.build", "tpch.dataset_cache.hit",
};

void Calibrate() {
  // Median cost of a Begin/End clock pair, from 257 back-to-back samples.
  constexpr int kSamples = 257;
  std::vector<uint64_t> deltas;
  deltas.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    uint64_t a = NowNanos();
    uint64_t b = NowNanos();
    deltas.push_back(b - a);
  }
  std::nth_element(deltas.begin(), deltas.begin() + kSamples / 2,
                   deltas.end());
  g_calibration_ns = static_cast<double>(deltas[kSamples / 2]);
}

// ---------------------------------------------------------------------------
// Merging: fold every thread tree into one name-keyed tree, then flatten to
// path-sorted PhaseStats with self time computed from direct children.
// ---------------------------------------------------------------------------

struct MergedNode {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = ~0ull;
  uint64_t max_ns = 0;
  std::map<std::string, MergedNode> children;  // ordered => deterministic
};

void MergeInto(const ThreadState& state, uint32_t node_id, MergedNode* out) {
  const Node& node = state.nodes[node_id];
  for (uint32_t c = node.first_child; c != kNoNode;
       c = state.nodes[c].next_sibling) {
    const Node& child = state.nodes[c];
    MergedNode& slot = out->children[PhaseName(child.phase)];
    slot.count += child.count;
    slot.total_ns += child.total_ns;
    slot.min_ns = std::min(slot.min_ns, child.min_ns);
    slot.max_ns = std::max(slot.max_ns, child.max_ns);
    MergeInto(state, c, &slot);
  }
}

void Flatten(const MergedNode& node, const std::string& prefix,
             std::vector<PhaseStat>* out) {
  for (const auto& [name, child] : node.children) {
    std::string path = prefix.empty() ? name : prefix + ";" + name;
    uint64_t child_total = 0;
    for (const auto& [gname, grand] : child.children) {
      (void)gname;
      child_total += grand.total_ns;
    }
    PhaseStat stat;
    stat.path = path;
    stat.count = child.count;
    stat.total_ns = child.total_ns;
    stat.self_ns =
        child.total_ns > child_total ? child.total_ns - child_total : 0;
    stat.min_ns = child.min_ns == ~0ull ? 0 : child.min_ns;
    stat.max_ns = child.max_ns;
    out->push_back(std::move(stat));
    Flatten(child, path, out);
  }
}

void AppendJsonUint(std::string* out, const char* key, uint64_t value,
                    bool trailing_comma) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%llu%s", key,
                static_cast<unsigned long long>(value),
                trailing_comma ? "," : "");
  *out += buf;
}

}  // namespace

namespace internal {

std::atomic<bool> g_enabled{false};

void Begin(PhaseId id) {
  ThreadState& state = LocalState();
  uint32_t parent = state.stack.empty() ? 0 : state.stack.back().node;
  uint32_t node = state.ChildOf(parent, id);
  state.stack.push_back(Frame{node, NowNanos()});
}

void End(uint64_t count_delta) {
  uint64_t now = NowNanos();
  ThreadState& state = LocalState();
  if (state.stack.empty()) {
    ++state.unmatched_ends;
    return;
  }
  Frame frame = state.stack.back();
  state.stack.pop_back();
  double raw = static_cast<double>(now - frame.start_ns) - g_calibration_ns;
  uint64_t d = raw > 0.0 ? static_cast<uint64_t>(raw) : 0;
  Node& node = state.nodes[frame.node];
  node.count += count_delta;
  node.total_ns += d;
  node.min_ns = std::min(node.min_ns, d);
  node.max_ns = std::max(node.max_ns, d);
}

}  // namespace internal

PhaseId RegisterPhase(std::string_view subsystem, std::string_view phase) {
  std::string name;
  name.reserve(subsystem.size() + 1 + phase.size());
  name.append(subsystem);
  name.push_back('.');
  name.append(phase);
  PhaseRegistry& reg = Phases();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, inserted] =
      reg.by_name.emplace(name, static_cast<PhaseId>(reg.names.size()));
  if (inserted) reg.names.push_back(std::move(name));
  return it->second;
}

const std::string& PhaseName(PhaseId id) {
  PhaseRegistry& reg = Phases();
  std::lock_guard<std::mutex> lock(reg.mu);
  static const std::string kUnknown = "<unknown>";
  if (id < 0 || static_cast<size_t>(id) >= reg.names.size()) return kUnknown;
  return reg.names[static_cast<size_t>(id)];
}

void Enable() {
  std::call_once(g_calibrate_once, Calibrate);
  internal::g_enabled.store(true, std::memory_order_release);
}

void Disable() {
  internal::g_enabled.store(false, std::memory_order_release);
}

uint64_t NowNanos() {
  // dmr-lint: allow(wall-clock) the prof seam itself (DESIGN.md §17)
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string_view AllocSiteName(AllocSite site) {
  return kAllocSiteNames[static_cast<size_t>(site)];
}

void AccountAlloc(AllocSite site, uint64_t count, uint64_t bytes) {
  if (!Enabled()) return;
  AllocCounters& c = g_alloc_counters[static_cast<size_t>(site)];
  c.count.fetch_add(count, std::memory_order_relaxed);
  c.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

const PhaseStat* ProfReport::FindPhase(std::string_view path) const {
  for (const PhaseStat& stat : phases) {
    if (stat.path == path) return &stat;
  }
  return nullptr;
}

ProfReport Collect() {
  ProfReport report;
  report.calibration_ns = g_calibration_ns;
  MergedNode root;
  StateRegistry& reg = States();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& state : reg.states) {
    bool touched = state->nodes.size() > 1 || state->unmatched_ends > 0 ||
                   !state->stack.empty();
    if (!touched) continue;
    ++report.threads;
    report.imbalances += static_cast<int>(state->stack.size()) +
                         static_cast<int>(state->unmatched_ends);
    MergeInto(*state, 0, &root);
  }
  Flatten(root, "", &report.phases);
  for (size_t i = 0; i < g_alloc_counters.size(); ++i) {
    uint64_t count = g_alloc_counters[i].count.load(std::memory_order_relaxed);
    uint64_t bytes = g_alloc_counters[i].bytes.load(std::memory_order_relaxed);
    if (count == 0 && bytes == 0) continue;
    AllocStat stat;
    stat.site = std::string(kAllocSiteNames[i]);
    stat.count = count;
    stat.bytes = bytes;
    report.alloc.push_back(std::move(stat));
  }
  return report;
}

void ResetForTest() {
  StateRegistry& reg = States();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& state : reg.states) state->Clear();
  for (auto& counters : g_alloc_counters) {
    counters.count.store(0, std::memory_order_relaxed);
    counters.bytes.store(0, std::memory_order_relaxed);
  }
}

std::string ToJson(const ProfReport& report) {
  std::string out = "{";
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"calibration_ns\":%.3f,",
                report.calibration_ns);
  out += buf;
  std::snprintf(buf, sizeof buf, "\"threads\":%d,\"imbalances\":%d,",
                report.threads, report.imbalances);
  out += buf;
  out += "\"phases\":[";
  for (size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseStat& p = report.phases[i];
    if (i > 0) out += ",";
    out += "{\"path\":\"" + p.path + "\",";
    AppendJsonUint(&out, "count", p.count, true);
    AppendJsonUint(&out, "total_ns", p.total_ns, true);
    AppendJsonUint(&out, "self_ns", p.self_ns, true);
    AppendJsonUint(&out, "min_ns", p.min_ns, true);
    AppendJsonUint(&out, "max_ns", p.max_ns, false);
    out += "}";
  }
  out += "],\"alloc\":[";
  for (size_t i = 0; i < report.alloc.size(); ++i) {
    const AllocStat& a = report.alloc[i];
    if (i > 0) out += ",";
    out += "{\"site\":\"" + a.site + "\",";
    AppendJsonUint(&out, "count", a.count, true);
    AppendJsonUint(&out, "bytes", a.bytes, false);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string ToCollapsed(const ProfReport& report) {
  std::string out;
  for (const PhaseStat& p : report.phases) {
    out += p.path;
    out += ' ';
    out += std::to_string(p.self_ns);
    out += '\n';
  }
  return out;
}

Result<ProfReport> ParseCollapsed(std::string_view text) {
  ProfReport report;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0 ||
        space + 1 >= line.size()) {
      return Status::ParseError("collapsed stack line " +
                                std::to_string(line_no) +
                                ": expected \"path value\"");
    }
    PhaseStat stat;
    stat.path = std::string(line.substr(0, space));
    uint64_t value = 0;
    for (size_t i = space + 1; i < line.size(); ++i) {
      char c = line[i];
      if (c < '0' || c > '9') {
        return Status::ParseError("collapsed stack line " +
                                  std::to_string(line_no) +
                                  ": non-numeric value");
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    stat.self_ns = value;
    stat.total_ns = value;
    report.phases.push_back(std::move(stat));
  }
  std::sort(report.phases.begin(), report.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.path < b.path;
            });
  return report;
}

}  // namespace dmr::prof
