#ifndef DMR_PROF_PROF_H_
#define DMR_PROF_PROF_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dmr::prof {

/// \brief Host-side phase profiling: where does the *simulator* spend real
/// time?
///
/// The obs layer answers "where did simulated slot-seconds go"; this seam
/// answers the dual question for host wall time — which is the binding
/// constraint on 1M+-query runs and 10k-node sweeps (ROADMAP items 1/3).
/// Design goals, in order:
///
///  1. **Near-free when idle.** Every entry point is a single relaxed-ish
///     atomic load and a predictable branch when profiling is off. Hot
///     loops (event dispatch) amortize the two clock reads of an enabled
///     frame over a ~1k-event chunk, so even enabled cost stays within the
///     2% budget benchmarked by `BENCH_sim_scale.json`
///     (`sim_scale_prof_overhead` cells).
///  2. **Determinism-invisible.** Profiling only *observes*: it never
///     reads results back into simulation decisions, so every simulation
///     digest is byte-identical with profiling on or off, across thread
///     counts and tie-shuffle seeds (tier-1 gates this). This is why the
///     seam reads `std::chrono::steady_clock` directly instead of
///     `HostClock`: profiles stay useful under `DMR_HOST_CLOCK=frozen`
///     precisely because prof timings never feed a digest-checked output.
///     prof and `common/host_clock` are the only two sanctioned homes for
///     raw host-clock reads (`wall-clock` / `raw-host-timer` dmr-lint
///     checks).
///  3. **Attributed, not aggregate.** Scopes nest into a per-thread timer
///     tree keyed by (subsystem, phase); `Collect()` merges the threads
///     into one deterministic-by-name tree with call counts, total/self
///     time and min/max, exportable as a JSON report section and as
///     Brendan-Gregg collapsed-stack text for flamegraph/speedscope.
///
/// Threading contract: frames are strictly thread-local (a scope opened on
/// one thread must close on the same thread — RAII enforces this).
/// `Enable()` / `Disable()` / `Collect()` / `ResetForTest()` must run from
/// a quiesced point: no other thread may be inside a frame or about to
/// open one (drivers call them before the worker pool starts and after all
/// cells joined). Collect() flags still-open stacks as imbalances rather
/// than crashing.
class ScopedTimer;

/// Dense id of a registered (subsystem, phase) pair. Register once per
/// call site through a static local:
///
///     static const prof::PhaseId kPhase =
///         prof::RegisterPhase("mapred", "heartbeat");
///     prof::ScopedTimer timer(kPhase);
using PhaseId = int32_t;

/// Registers (or finds) the phase named `subsystem.phase`. Thread-safe;
/// idempotent per name.
PhaseId RegisterPhase(std::string_view subsystem, std::string_view phase);

/// The registered display name ("sim.dispatch") of a phase id.
const std::string& PhaseName(PhaseId id);

namespace internal {
extern std::atomic<bool> g_enabled;
void Begin(PhaseId id);
/// Closes the innermost frame; `count_delta` is the number of logical
/// operations the frame covered (1 for a plain scope, the events fired for
/// a dispatch chunk). An End with no matching Begin is counted as an
/// imbalance and otherwise ignored.
void End(uint64_t count_delta);
}  // namespace internal

/// True when profiling is collecting. Acquire ordering so state cleared by
/// ResetForTest()+Enable() is visible to every thread that observes the
/// flag flip.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_acquire);
}

/// Starts collection (idempotent). Calibrates the timer-pair overhead on
/// first use; calibration is subtracted from every frame so ~100 ns phases
/// stay honest.
void Enable();

/// Stops collection. Aggregated state is kept for Collect().
void Disable();

/// Nanoseconds from the sanctioned raw monotonic clock (prof-internal
/// epoch). Exposed for bench drivers that want manual bracketing.
uint64_t NowNanos();

/// \brief RAII frame: opens a child of the calling thread's current phase
/// node on construction, records duration/count on destruction. ~2 clock
/// reads when enabled, one atomic load when disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseId id) : active_(Enabled()) {
    if (active_) internal::Begin(id);
  }
  ~ScopedTimer() {
    if (active_) internal::End(1);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  bool active_;
};

/// Explicit frame API for bulk-amortized sites (the event-dispatch chunk):
/// callers gate on Enabled() themselves, then attribute `count` logical
/// operations to the one frame.
///
///     if (prof::Enabled()) {
///       prof::BeginPhase(kDispatch);
///       ... fire up to N events ...
///       prof::EndPhase(fired);
///     }
inline void BeginPhase(PhaseId id) { internal::Begin(id); }
inline void EndPhase(uint64_t count_delta) { internal::End(count_delta); }

// ---------------------------------------------------------------------------
// Allocation accounting: fixed well-known sites (bytes + counts), cheap
// enough to hook slab carves and cache builds without a registry lookup.
// ---------------------------------------------------------------------------

enum class AllocSite : int {
  kArenaChunk = 0,     // sim::Arena 64 KB chunk carved from the OS
  kArenaLarge,         // sim::Arena request above the biggest size class
  kCallbackSpill,      // EventCallback too big for inline SBO storage
  kColumnarBuild,      // ColumnarPartition materialized from row form
  kDatasetCacheBuild,  // MaterializeDatasetShared cache miss (bytes built)
  kDatasetCacheHit,    // MaterializeDatasetShared cache hit (bytes reused)
  kNumSites,
};

/// Dump name of a site ("sim.arena.chunk", ...).
std::string_view AllocSiteName(AllocSite site);

/// Adds `count` allocations totalling `bytes` to the site. No-op when
/// profiling is disabled. Relaxed atomics: totals, never ordering.
void AccountAlloc(AllocSite site, uint64_t count, uint64_t bytes);

// ---------------------------------------------------------------------------
// Sealing and export.
// ---------------------------------------------------------------------------

/// One merged phase node, identified by its root-to-node path (phase
/// names joined with ';' — the collapsed-stack convention).
struct PhaseStat {
  std::string path;
  uint64_t count = 0;     // logical operations attributed to the node
  uint64_t total_ns = 0;  // inclusive wall time across all frames
  uint64_t self_ns = 0;   // total minus direct children (clamped >= 0)
  uint64_t min_ns = 0;    // fastest single frame
  uint64_t max_ns = 0;    // slowest single frame
};

struct AllocStat {
  std::string site;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

/// A sealed profile: thread trees merged by path, sorted by path so every
/// rendering is deterministic for a given set of measurements.
struct ProfReport {
  double calibration_ns = 0.0;  // per-frame overhead subtracted
  int threads = 0;              // thread-local trees merged
  int imbalances = 0;           // still-open frames + unmatched Ends
  std::vector<PhaseStat> phases;  // sorted by path
  std::vector<AllocStat> alloc;   // sites with activity, in enum order

  const PhaseStat* FindPhase(std::string_view path) const;
};

/// Merges every thread's tree into one report. Must run quiesced (see the
/// class comment); still-open frames are reported as imbalances, with the
/// time accumulated so far excluded.
ProfReport Collect();

/// Drops all recorded state (trees, alloc counters, imbalance counts).
/// Quiesced-only, like Collect. For A/B overhead cells and tests.
void ResetForTest();

/// JSON object: {"calibration_ns":.., "threads":.., "imbalances":..,
/// "phases":[{"path":..,"count":..,"total_ns":..,"self_ns":..,"min_ns":..,
/// "max_ns":..}], "alloc":[{"site":..,"count":..,"bytes":..}]}.
std::string ToJson(const ProfReport& report);

/// Brendan-Gregg collapsed-stack text: one `path self_ns` line per phase
/// node (flamegraph.pl / speedscope input), sorted by path.
std::string ToCollapsed(const ProfReport& report);

/// Parses collapsed-stack text back into a report skeleton (paths +
/// self_ns; counts/extrema are not representable in the format). The
/// exact inverse of ToCollapsed for round-trip checks.
Result<ProfReport> ParseCollapsed(std::string_view text);

}  // namespace dmr::prof

#endif  // DMR_PROF_PROF_H_
