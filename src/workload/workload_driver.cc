#include "workload/workload_driver.h"

#include <memory>

#include "common/logging.h"
#include "common/random.h"

namespace dmr::workload {

namespace {
const ClassReport kEmptyReport;
}  // namespace

const ClassReport& WorkloadReport::For(const std::string& klass) const {
  auto it = by_class.find(klass);
  return it == by_class.end() ? kEmptyReport : it->second;
}

struct WorkloadDriver::UserState {
  UserSpec spec;
  int iteration = 0;
  Rng arrival_rng{1};
};

WorkloadDriver::WorkloadDriver(mapred::JobClient* client)
    : client_(client), sim_(client->simulation()) {}

void WorkloadDriver::AddUser(UserSpec user) { users_.push_back(std::move(user)); }

void WorkloadDriver::SubmitNext(std::shared_ptr<UserState> user) {
  if (sim_->Now() >= options_.duration) return;  // run is over
  Result<mapred::JobSubmission> submission =
      user->spec.make_job(user->iteration);
  if (!submission.ok()) {
    if (first_error_.ok()) first_error_ = submission.status();
    return;
  }
  ++user->iteration;

  bool open_loop = user->spec.arrival_rate > 0.0;
  auto on_complete = [this, user, open_loop](const mapred::JobStats& stats) {
    if (stats.finish_time >= options_.warmup &&
        stats.finish_time <= options_.duration) {
      ClassReport& report = by_class_[user->spec.job_class];
      ++report.completions;
      report.response_times.Add(stats.response_time());
      report.mean_partitions_per_job +=
          static_cast<double>(stats.splits_processed);
      report.mean_records_per_job +=
          static_cast<double>(stats.records_processed);
      ++total_completions_;
    }
    if (open_loop) return;  // arrivals are driven by the Poisson clock
    // Closed loop: resubmit after the user's think time.
    if (user->spec.think_time > 0.0) {
      sim_->Schedule(user->spec.think_time, sim::EventClass::kInputGrowth,
                     [this, user] { SubmitNext(user); });
    } else {
      SubmitNext(user);
    }
  };

  Result<int> job_id = client_->Submit(*std::move(submission), on_complete);
  if (!job_id.ok() && first_error_.ok()) first_error_ = job_id.status();

  if (open_loop) {
    // Schedule the next arrival independent of this job's fate.
    double gap =
        user->arrival_rng.NextExponential(1.0 / user->spec.arrival_rate);
    sim_->Schedule(gap, sim::EventClass::kInputGrowth,
                   [this, user] { SubmitNext(user); });
  }
}

Result<WorkloadReport> WorkloadDriver::Run(const WorkloadOptions& options) {
  if (users_.empty()) {
    return Status::FailedPrecondition("no users added to the workload");
  }
  if (options.warmup >= options.duration) {
    return Status::InvalidArgument("warmup must be shorter than duration");
  }
  options_ = options;
  by_class_.clear();
  total_completions_ = 0;
  first_error_ = Status::OK();

  for (const auto& spec : users_) {
    auto user = std::make_shared<UserState>();
    user->spec = spec;
    user->arrival_rng = Rng(spec.arrival_seed ^ 0xA11CE5EEDULL);
    SubmitNext(user);
  }
  sim_->RunUntil(options.duration);
  if (!first_error_.ok()) return first_error_;

  double window_hours = (options.duration - options.warmup) / 3600.0;
  WorkloadReport report;
  report.total_completions = total_completions_;
  for (auto& [klass, r] : by_class_) {
    if (r.completions > 0) {
      r.mean_partitions_per_job /= static_cast<double>(r.completions);
      r.mean_records_per_job /= static_cast<double>(r.completions);
    }
    r.throughput_jobs_per_hour =
        static_cast<double>(r.completions) / window_hours;
    report.by_class[klass] = std::move(r);
  }
  return report;
}

}  // namespace dmr::workload
