#ifndef DMR_WORKLOAD_WORKLOAD_DRIVER_H_
#define DMR_WORKLOAD_WORKLOAD_DRIVER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "mapred/job_client.h"

namespace dmr::workload {

/// \brief One simulated end-user: a closed loop that submits a job, waits
/// for completion and immediately submits the next — the paper's workload
/// generator model ("each user submits a query and waits for its completion
/// before submitting another", Section V-D).
struct UserSpec {
  std::string name;
  /// Class label for per-class reporting ("Sampling" / "NonSampling").
  std::string job_class;
  /// Builds the user's next submission; `iteration` counts from 0.
  std::function<Result<mapred::JobSubmission>(int iteration)> make_job;
  /// Delay between a job completing and the next submission; models the
  /// Hive client's compile/submit/fetch overhead plus Hadoop 0.20's job
  /// setup/cleanup tasks. 0 = immediate resubmission.
  double think_time = 0.0;
  /// When > 0 the user is an *open-loop* source: jobs arrive as a Poisson
  /// process with this rate (jobs/second) regardless of completions —
  /// useful for studying the cluster beyond its closed-loop saturation
  /// point. think_time is ignored for open-loop users.
  double arrival_rate = 0.0;
  /// Seed for the Poisson arrival draws.
  uint64_t arrival_seed = 1;
};

/// \brief Driver options.
struct WorkloadOptions {
  /// Virtual duration of the run (seconds).
  double duration = 4.0 * 3600.0;
  /// Completions before this time are excluded from steady-state metrics.
  double warmup = 1800.0;
};

/// \brief Per-class steady-state results.
struct ClassReport {
  int completions = 0;
  double throughput_jobs_per_hour = 0.0;
  Histogram response_times;
  double mean_partitions_per_job = 0.0;
  double mean_records_per_job = 0.0;
};

/// \brief Whole-run results.
struct WorkloadReport {
  std::map<std::string, ClassReport> by_class;
  int total_completions = 0;

  const ClassReport& For(const std::string& klass) const;
};

/// \brief Runs a closed-loop multi-user workload on the simulated cluster.
class WorkloadDriver {
 public:
  explicit WorkloadDriver(mapred::JobClient* client);

  void AddUser(UserSpec user);

  /// Runs the simulation for options.duration virtual seconds and returns
  /// steady-state per-class metrics. Jobs completing before options.warmup
  /// are counted as warm-up and excluded.
  Result<WorkloadReport> Run(const WorkloadOptions& options);

 private:
  struct UserState;

  void SubmitNext(std::shared_ptr<UserState> user);

  mapred::JobClient* client_;
  sim::Simulation* sim_;
  std::vector<UserSpec> users_;
  // Populated during Run().
  WorkloadOptions options_;
  std::map<std::string, ClassReport> by_class_;
  int total_completions_ = 0;
  Status first_error_;
};

}  // namespace dmr::workload

#endif  // DMR_WORKLOAD_WORKLOAD_DRIVER_H_
