#include "sim/ps_resource.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace dmr::sim {

namespace {
// A request is complete when its remaining demand falls below an absolute
// floor plus a relative fraction of its original demand; this absorbs the
// floating-point residue that accumulates over repeated Advance() calls.
constexpr double kEpsilonAbs = 1e-9;
constexpr double kEpsilonRel = 1e-9;

// Completion events are never scheduled closer than this, so virtual time
// always advances past residue-sized remainders (a delay of 1e-16 s would
// be absorbed by double addition at t ~ 100 s and loop forever).
constexpr double kMinDelay = 1e-6;

double CompletionEpsilon(double demand) {
  return kEpsilonAbs + kEpsilonRel * demand;
}
}  // namespace

PsResource::PsResource(Simulation* sim, std::string name, double capacity,
                       double per_request_cap)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(capacity),
      per_request_cap_(per_request_cap),
      last_advance_(sim->Now()) {
  DMR_CHECK_GT(capacity_, 0.0) << "resource " << name_;
  DMR_CHECK_GT(per_request_cap_, 0.0) << "resource " << name_;
}

double PsResource::PerRequestRate() const {
  if (requests_.empty()) return 0.0;
  double share = capacity_ / static_cast<double>(requests_.size());
  return std::min(share, per_request_cap_);
}

double PsResource::current_rate() const {
  return PerRequestRate() * static_cast<double>(requests_.size());
}

void PsResource::Advance() {
  double now = sim_->Now();
  double elapsed = now - last_advance_;
  last_advance_ = now;
  if (elapsed <= 0.0 || requests_.empty()) return;
  double rate = PerRequestRate();
  double served = rate * elapsed;
  for (auto& [id, req] : requests_) {
    req.remaining -= served;
    delivered_ += std::min(served, req.remaining + served);
  }
}

double PsResource::total_delivered() {
  Advance();
  Reschedule();
  return delivered_;
}

PsResource::RequestId PsResource::Submit(double demand,
                                         CompletionCallback on_complete) {
  Advance();
  RequestId id = next_id_++;
  double d = std::max(demand, 0.0);
  requests_[id] = Request{d, d, std::move(on_complete)};
  Reschedule();
  return id;
}

bool PsResource::CancelRequest(RequestId id) {
  Advance();
  auto it = requests_.find(id);
  if (it == requests_.end()) return false;
  requests_.erase(it);
  Reschedule();
  return true;
}

void PsResource::Reschedule() {
  next_completion_.Cancel();
  if (requests_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, req] : requests_) {
    min_remaining = std::min(min_remaining, req.remaining);
  }
  double rate = PerRequestRate();
  double delay = std::max(std::max(0.0, min_remaining) / rate, kMinDelay);
  next_completion_ = sim_->Schedule(delay, EventClass::kTaskLifecycle,
                                    [this] { OnCompletionEvent(); });
}

void PsResource::OnCompletionEvent() {
  Advance();
  std::vector<CompletionCallback> done;
  for (auto it = requests_.begin(); it != requests_.end();) {
    if (it->second.remaining <= CompletionEpsilon(it->second.demand)) {
      done.push_back(std::move(it->second.on_complete));
      it = requests_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
  // Callbacks run after membership/rescheduling so they can safely submit
  // follow-up requests to this same resource.
  for (auto& cb : done) {
    if (cb) cb();
  }
}

}  // namespace dmr::sim
