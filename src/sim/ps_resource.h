#ifndef DMR_SIM_PS_RESOURCE_H_
#define DMR_SIM_PS_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>

#include "sim/simulation.h"

namespace dmr::sim {

/// \brief A processor-sharing resource with a total capacity and an optional
/// per-request rate cap.
///
/// Models disks (capacity = aggregate bandwidth in bytes/s, per-request cap =
/// single-stream bandwidth), node CPUs (capacity = number of cores in
/// core-seconds/s, per-request cap = 1 core), and the cluster network.
/// Active requests share the capacity equally, subject to the per-request
/// cap; when membership changes, remaining demands are advanced and the next
/// completion event is rescheduled. This is the classic PS-queue simulation.
class PsResource {
 public:
  using RequestId = uint64_t;
  using CompletionCallback = std::function<void()>;

  /// \param sim        owning simulation (must outlive the resource).
  /// \param name       for diagnostics.
  /// \param capacity   total service units per second; must be > 0.
  /// \param per_request_cap  max service rate any single request receives.
  PsResource(Simulation* sim, std::string name, double capacity,
             double per_request_cap = std::numeric_limits<double>::infinity());

  /// Submits a request demanding `demand` service units; `on_complete` fires
  /// when the demand has been delivered. Zero/negative demand completes at
  /// the current time (via a zero-delay event).
  RequestId Submit(double demand, CompletionCallback on_complete);

  /// Cancels an in-flight request (no callback). Returns false if unknown.
  bool CancelRequest(RequestId id);

  /// Number of requests currently being served.
  size_t active_requests() const { return requests_.size(); }

  /// Aggregate service rate currently being delivered (<= capacity).
  double current_rate() const;

  /// Total service units delivered so far (advanced lazily; callers should
  /// treat it as accurate as of the last event).
  double total_delivered();

  /// Instantaneous utilization in [0, 1]: current rate / capacity.
  double Utilization() const { return current_rate() / capacity_; }

  double capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

 private:
  struct Request {
    double remaining;
    /// Original demand (anchors the relative completion epsilon).
    double demand;
    CompletionCallback on_complete;
  };

  /// Advances all remaining demands to Now() and accumulates delivery.
  void Advance();

  /// Fires completion callbacks for exhausted requests, then reschedules.
  void OnCompletionEvent();

  /// Recomputes the next completion event from current membership.
  void Reschedule();

  /// Service rate each active request receives right now.
  double PerRequestRate() const;

  Simulation* sim_;
  std::string name_;
  double capacity_;
  double per_request_cap_;
  std::map<RequestId, Request> requests_;
  RequestId next_id_ = 1;
  double last_advance_ = 0.0;
  double delivered_ = 0.0;
  EventHandle next_completion_;
};

}  // namespace dmr::sim

#endif  // DMR_SIM_PS_RESOURCE_H_
