#include "sim/arena.h"

namespace dmr::sim {

void* Arena::Carve(int cls) {
  const std::size_t block = kMinBlock << cls;
  if (bump_left_ < block) {
    // Blocks are powers of two dividing the chunk size, so a fresh chunk
    // always satisfies the request; the tail of the old chunk (< block
    // bytes) is abandoned.
    prof::AccountAlloc(prof::AllocSite::kArenaChunk, 1, kChunkBytes);
    auto chunk = std::make_unique<unsigned char[]>(kChunkBytes);
    bump_ = chunk.get();
    bump_left_ = kChunkBytes;
    bytes_reserved_ += kChunkBytes;
    chunks_.push_back(std::move(chunk));
  }
  void* p = bump_;
  bump_ += block;
  bump_left_ -= block;
  ++allocations_;
  return p;
}

}  // namespace dmr::sim
