#ifndef DMR_SIM_AFFINITY_H_
#define DMR_SIM_AFFINITY_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>

#include "common/logging.h"

/// \file
/// \brief The shard-ownership vocabulary: static annotations consumed by
/// dmr-lint's shard-ownership checks, plus the dynamic affinity sentinel
/// that enforces the same contract at run time in sanitizer builds.
///
/// The contract (DESIGN.md §14/§18): during a RunParallel epoch each shard
/// is owned by exactly one worker thread, and everything reachable from a
/// shard — its queue, arena, slot pool, clocks, staging inboxes — may only
/// be touched by that owner. Cross-shard work funnels through three seams:
/// ScheduleOnShard/ScheduleOnShardDetached (which stage remote events),
/// MergeStagedEvents (which drains inboxes inside the barrier window), and
/// the nullptr-arena EventCallback spill box (freed on the target shard).
///
/// The annotations expand to nothing; they exist so the contract is
/// machine-checkable:
///
///  - DMR_SHARD_AFFINE marks state owned by a single shard. On a
///    class head (`struct DMR_SHARD_AFFINE Shard`) the whole type is
///    affine and its own member functions are sanctioned; on a member or
///    variable declaration it marks that name, and dmr-lint then flags any
///    use of the name outside a sanctioned scope.
///  - DMR_CROSS_SHARD_OK marks a scope (function, lambda, class) or a
///    single statement that is safe to run against foreign shards:
///    mutex-protected, read-only-racy-by-design probes, or one of the
///    staging seams themselves.
///  - DMR_BARRIER_PHASE marks a scope that only runs while no worker is
///    inside an epoch — setup before RunParallel, the serial engine, and
///    the barrier-completion callback — and therefore owns every shard.
///
/// A lambda never inherits its enclosing function's sanction (its body may
/// run on another thread); restate the annotation on the lambda itself.

// dmr-lint's scope tracker reads these identifiers from the token stream;
// the compiler sees empty expansions.
#define DMR_SHARD_AFFINE
#define DMR_CROSS_SHARD_OK
#define DMR_BARRIER_PHASE

namespace dmr::sim {

/// \brief Run-time watchdog for the shard-ownership contract.
///
/// Each shard records its owning thread when a RunParallel worker binds to
/// it; Check(shard) then DMR_CHECK-fails when called from any other thread
/// while the parallel phase is live and the barrier window is closed.
/// Strictly observation-only: it never blocks, never orders anything, and
/// enabling it cannot change a simulation's outputs (the tier-1 digest
/// stage holds it to that). Off by default in release builds; the tsan and
/// asan presets compile it on via -DDMR_SHARD_SENTINEL_DEFAULT=1, and the
/// DMR_SHARD_SENTINEL environment variable overrides either way.
class AffinitySentinel {
 public:
  /// Resolves the compile-time default against the environment override.
  static bool DefaultEnabled() {
    if (const char* env = std::getenv("DMR_SHARD_SENTINEL")) {
      return env[0] != '\0' && env[0] != '0';
    }
#ifdef DMR_SHARD_SENTINEL_DEFAULT
    return DMR_SHARD_SENTINEL_DEFAULT != 0;
#else
    return false;
#endif
  }

  void set_enabled(bool on) { enabled_.store(on); }
  bool enabled() const { return enabled_.load(); }

  /// Sizes the owner table; called whenever the shard count changes
  /// (always outside a parallel phase).
  void Resize(std::size_t n_shards) {
    owners_ = std::make_unique<std::atomic<uint64_t>[]>(n_shards);
    n_ = n_shards;
    for (std::size_t i = 0; i < n_; ++i) owners_[i].store(0);
  }

  /// Opens a parallel phase: all ownership records reset, checks arm.
  void EnterParallel() {
    for (std::size_t i = 0; i < n_; ++i) owners_[i].store(0);
    in_barrier_.store(false);
    parallel_.store(true);
  }

  void ExitParallel() { parallel_.store(false); }

  /// A worker's first act: claim its shard for this thread.
  void BindOwner(std::size_t shard) {
    if (shard < n_) owners_[shard].store(SelfId());
  }

  /// Brackets the barrier-completion callback, during which one thread
  /// legitimately touches every shard while the rest are parked.
  void OpenBarrier() { in_barrier_.store(true); }
  void CloseBarrier() { in_barrier_.store(false); }

  /// Aborts (DMR_CHECK) when `shard` is accessed from a thread that is not
  /// its recorded owner during a live epoch. `op` names the seam for the
  /// failure message. No-op when disabled, outside a parallel phase, or
  /// inside the barrier window.
  void Check(std::size_t shard, const char* op) const {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    if (!parallel_.load(std::memory_order_acquire)) return;
    if (in_barrier_.load(std::memory_order_acquire)) return;
    if (shard >= n_) return;
    const uint64_t owner = owners_[shard].load(std::memory_order_acquire);
    if (owner == 0) return;  // shard not yet bound this epoch
    DMR_CHECK(owner == SelfId())
        << "shard-affinity violation: " << op << " touched shard " << shard
        << " from a thread that does not own it (owner tag " << owner
        << ", caller tag " << SelfId()
        << "); cross-shard work must go through ScheduleOnShard or wait "
           "for the barrier window";
  }

 private:
  static uint64_t SelfId() {
    const uint64_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return h == 0 ? 1 : h;  // 0 is the "unbound" sentinel value
  }

  std::unique_ptr<std::atomic<uint64_t>[]> owners_;
  std::size_t n_ = 0;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> parallel_{false};
  std::atomic<bool> in_barrier_{false};
};

}  // namespace dmr::sim

#endif  // DMR_SIM_AFFINITY_H_
