#include "sim/simulation.h"

#include <algorithm>

#include "common/logging.h"

namespace dmr::sim {

namespace internal {

void EventSlotPool::Grow() {
  auto chunk = std::make_unique<EventSlot[]>(kChunkSlots);
  for (std::size_t i = 0; i < kChunkSlots; ++i) {
    chunk[i].pool = this;
    chunk[i].next_free = free_;
    free_ = &chunk[i];
  }
  chunks_.push_back(std::move(chunk));
}

}  // namespace internal

void EventHandle::Cancel() {
  if (!slot_ || slot_->cancelled || slot_->fired) return;
  slot_->cancelled = true;
  if (slot_->owner != nullptr) slot_->owner->OnCancelled();
}

Simulation::Simulation() : pool_(internal::EventSlotPool::Create()) {}

Simulation::~Simulation() {
  // Detach and release every still-queued event. Marking the slots
  // cancelled makes surviving handles report not-pending (the event can
  // never fire) and turns later Cancel() calls into no-ops; the slot memory
  // itself outlives us via the handles' pool references.
  for (Event& ev : heap_) {
    ev.slot->cancelled = true;
    ev.slot->owner = nullptr;
    internal::SlotRelease(ev.slot);
  }
  heap_.clear();
  pool_->DropOwnerRef();
}

EventHandle Simulation::Schedule(SimTime delay, Callback fn) {
  DMR_CHECK_GE(delay, 0.0) << "negative delay " << delay;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulation::ScheduleAt(SimTime when, Callback fn) {
  DMR_CHECK_GE(when, now_) << "scheduling into the past";
  internal::EventSlot* slot = pool_->Acquire();
  slot->owner = this;
  internal::SlotAddRef(slot);  // the queue's reference
  heap_.push_back(Event{when, next_seq_++, std::move(fn), slot});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  return EventHandle(slot);
}

void Simulation::ReleaseQueueRef(internal::EventSlot* slot) {
  slot->owner = nullptr;
  internal::SlotRelease(slot);
}

void Simulation::OnCancelled() {
  ++cancelled_in_queue_;
  MaybePurgeCancelled();
}

void Simulation::MaybePurgeCancelled() {
  static constexpr size_t kMinCancelled = 64;
  if (cancelled_in_queue_ < kMinCancelled) return;
  if (cancelled_in_queue_ * 4 < heap_.size()) return;
  auto keep = heap_.begin();
  for (auto it = heap_.begin(); it != heap_.end(); ++it) {
    if (it->slot->cancelled) {
      ReleaseQueueRef(it->slot);
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  heap_.erase(keep, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), EventAfter{});
  cancelled_in_queue_ = 0;
}

bool Simulation::Step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (ev.slot->cancelled) {
      --cancelled_in_queue_;
      ReleaseQueueRef(ev.slot);
      continue;
    }
    now_ = ev.time;
    ev.slot->fired = true;
    ReleaseQueueRef(ev.slot);
    ++events_fired_;
    ev.fn();
    return true;
  }
  return false;
}

uint64_t Simulation::Run(uint64_t max_events) {
  uint64_t fired = 0;
  while (fired < max_events && Step()) ++fired;
  return fired;
}

uint64_t Simulation::RunUntil(SimTime until) {
  uint64_t fired = 0;
  while (!heap_.empty()) {
    if (heap_.front().slot->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
      Event ev = std::move(heap_.back());
      heap_.pop_back();
      --cancelled_in_queue_;
      ReleaseQueueRef(ev.slot);
      continue;
    }
    if (heap_.front().time > until) break;
    if (Step()) ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

}  // namespace dmr::sim
