#include "sim/simulation.h"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <functional>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "prof/prof.h"

namespace dmr::sim {

namespace {

/// The process-wide tie-shuffle default; see SetGlobalTieShuffle.
std::optional<uint64_t> g_tie_shuffle;

/// The process-wide queue-kind override; see SetGlobalQueueKind.
std::optional<QueueKind> g_queue_kind;

/// SplitMix64's output finalizer over (seed XOR key): a bijection of the
/// key for any fixed seed, so distinct keys never collide and the shuffled
/// order is still total.
uint64_t ShuffleKey(uint64_t seed, uint64_t key) {
  return Rng(seed ^ key).Next();
}

/// std::barrier's completion object must be nothrow-invocable;
/// std::function is not, so wrap it.
struct BarrierCompletion {
  std::function<void()>* fn;
  void operator()() const noexcept { (*fn)(); }
};

}  // namespace

namespace internal {

thread_local TlsShard t_shard;

bool EventAfter::operator()(const Event& a, const Event& b) const {
  if (a.time != b.time) return a.time > b.time;
  if (!shuffle) return a.key > b.key;
  const uint64_t a_class = a.key >> kClassShift;
  const uint64_t b_class = b.key >> kClassShift;
  if (a_class != b_class) return a_class > b_class;
  return ShuffleKey(seed, a.key) > ShuffleKey(seed, b.key);
}

void EventSlotPool::Grow() {
  auto chunk = std::make_unique<EventSlot[]>(kChunkSlots);
  for (std::size_t i = 0; i < kChunkSlots; ++i) {
    chunk[i].pool = this;
    chunk[i].next_free = free_;
    free_ = &chunk[i];
  }
  chunks_.push_back(std::move(chunk));
}

void EventQueue::Init(QueueKind kind, double bucket_width, int num_buckets,
                      EventAfter after, std::size_t* cancelled_counter) {
  DMR_CHECK_GT(bucket_width, 0.0);
  DMR_CHECK_GE(num_buckets, 1);
  kind_ = kind;
  after_ = after;
  cancelled_counter_ = cancelled_counter;
  width_ = bucket_width;
  inv_width_ = 1.0 / bucket_width;
  if (kind_ == QueueKind::kCalendar) {
    buckets_.clear();
    buckets_.resize(static_cast<std::size_t>(num_buckets));
    horizon_ = epoch_ + width_ * static_cast<double>(buckets_.size());
  }
}

void EventQueue::ReleaseCancelled(Event& ev) {
  ev.slot->owner = nullptr;
  SlotRelease(ev.slot);
  --*cancelled_counter_;
}

std::size_t EventQueue::BucketIndex(SimTime t) const {
  const double offset = (t - epoch_) * inv_width_;
  std::size_t idx =
      offset <= 0.0 ? 0 : static_cast<std::size_t>(offset);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  if (idx < cur_) idx = cur_;
  return idx;
}

void EventQueue::Push(Event&& ev) {
  ++size_;
  if (kind_ == QueueKind::kBinaryHeap) {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), after_);
    return;
  }
  if (size_ == 1) {
    // Empty queue: rebase the bucket window at this event's time so sparse
    // schedules never force a pointless march through empty buckets.
    epoch_ = std::floor(ev.time / width_) * width_;
    horizon_ = epoch_ + width_ * static_cast<double>(buckets_.size());
    cur_ = 0;
    cur_sorted_ = false;
  }
  if (ev.time >= horizon_) {
    overflow_.push_back(std::move(ev));
    return;
  }
  const std::size_t idx = BucketIndex(ev.time);
  std::vector<Event>& bucket = buckets_[idx];
  ++in_buckets_;
  if (idx == cur_ && cur_sorted_) {
    // The current bucket is kept sorted latest-first (so the next event to
    // fire is back()); splice the newcomer into position. Rare: only
    // schedules landing inside the currently-draining bucket take this.
    bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), ev, after_),
                  std::move(ev));
    return;
  }
  if (bucket.capacity() == 0) bucket.reserve(8);
  bucket.push_back(std::move(ev));
}

std::size_t EventQueue::Compact(std::vector<Event>& v) {
  auto keep = v.begin();
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (it->slot != nullptr && it->slot->cancelled) {
      ReleaseCancelled(*it);
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  const std::size_t removed = static_cast<std::size_t>(v.end() - keep);
  v.erase(keep, v.end());
  return removed;
}

void EventQueue::Refill() {
  static const prof::PhaseId kRefillPhase =
      prof::RegisterPhase("sim", "queue_refill");
  prof::ScopedTimer prof_frame(kRefillPhase);
  SimTime tmin = overflow_.front().time;
  for (const Event& ev : overflow_) tmin = std::min(tmin, ev.time);
  epoch_ = std::floor(tmin / width_) * width_;
  horizon_ = epoch_ + width_ * static_cast<double>(buckets_.size());
  cur_ = 0;
  cur_sorted_ = false;
  auto keep = overflow_.begin();
  for (auto it = overflow_.begin(); it != overflow_.end(); ++it) {
    if (it->time < horizon_) {
      buckets_[BucketIndex(it->time)].push_back(std::move(*it));
      ++in_buckets_;
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  overflow_.erase(keep, overflow_.end());
  cur_ = BucketIndex(tmin);
}

bool EventQueue::PrepareCurrent() {
  while (size_ > 0) {
    if (in_buckets_ == 0) {
      // Only the overflow tier holds events (size_ > 0 guarantees it is
      // non-empty in calendar mode); open a new window there.
      Refill();
      continue;
    }
    if (buckets_[cur_].empty()) {
      // in_buckets_ > 0 and pushes are clamped to >= cur_, so a non-empty
      // bucket exists ahead.
      do {
        ++cur_;
      } while (buckets_[cur_].empty());
      cur_sorted_ = false;
      continue;
    }
    if (!cur_sorted_) {
      // Order the bucket once, latest-first, when the cursor arrives:
      // buckets are small by construction, so a sort beats heap
      // maintenance and makes every subsequent pop a plain pop_back().
      std::vector<Event>& bucket = buckets_[cur_];
      const std::size_t removed = Compact(bucket);
      in_buckets_ -= removed;
      size_ -= removed;
      std::sort(bucket.begin(), bucket.end(), after_);
      cur_sorted_ = true;
      if (bucket.empty()) continue;  // bucket was all tombstones
    }
    return true;
  }
  return false;
}

Event* EventQueue::PeekLive() {
  if (kind_ == QueueKind::kBinaryHeap) {
    while (!heap_.empty() && heap_.front().slot != nullptr &&
           heap_.front().slot->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), after_);
      ReleaseCancelled(heap_.back());
      heap_.pop_back();
      --size_;
    }
    return heap_.empty() ? nullptr : &heap_.front();
  }
  for (;;) {
    if (!PrepareCurrent()) return nullptr;
    std::vector<Event>& bucket = buckets_[cur_];
    EventSlot* slot = bucket.back().slot;
    if (slot == nullptr || !slot->cancelled) return &bucket.back();
    ReleaseCancelled(bucket.back());
    bucket.pop_back();
    --in_buckets_;
    --size_;
  }
}

Event EventQueue::PopLive() {
  if (kind_ == QueueKind::kBinaryHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), after_);
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    --size_;
    return ev;
  }
  std::vector<Event>& bucket = buckets_[cur_];
  Event ev = std::move(bucket.back());
  bucket.pop_back();
  --in_buckets_;
  --size_;
  return ev;
}

std::size_t EventQueue::PurgeCancelled() {
  static const prof::PhaseId kPurgePhase =
      prof::RegisterPhase("sim", "queue_purge");
  prof::ScopedTimer prof_frame(kPurgePhase);
  std::size_t removed = 0;
  if (kind_ == QueueKind::kBinaryHeap) {
    removed = Compact(heap_);
    std::make_heap(heap_.begin(), heap_.end(), after_);
    size_ -= removed;
    return removed;
  }
  for (std::vector<Event>& bucket : buckets_) {
    const std::size_t n = Compact(bucket);
    removed += n;
    in_buckets_ -= n;
  }
  removed += Compact(overflow_);
  size_ -= removed;
  // Compaction may have disturbed the current bucket; PrepareCurrent
  // re-sorts it on the next dequeue.
  cur_sorted_ = false;
  return removed;
}

}  // namespace internal

void EventHandle::Cancel() {
  if (!slot_ || slot_->cancelled || slot_->fired) return;
  slot_->cancelled = true;
  if (slot_->owner != nullptr) slot_->owner->OnCancelled(slot_);
}

Simulation::Simulation() : Simulation(SimulationOptions{}) {}

Simulation::Simulation(const SimulationOptions& options) : options_(options) {
  if (g_queue_kind.has_value()) options_.queue = *g_queue_kind;
  sentinel_.set_enabled(AffinitySentinel::DefaultEnabled());
  AddShard();
  if (g_tie_shuffle.has_value()) EnableTieShuffle(*g_tie_shuffle);
}

Simulation::~Simulation() = default;

void Simulation::AddShard() DMR_BARRIER_PHASE {
  auto shard = std::make_unique<internal::Shard>();
  shard->now = now_;
  shard->queue.Init(options_.queue, options_.bucket_width,
                    options_.num_buckets, After(),
                    &shard->cancelled_in_queue);
  shards_.push_back(std::move(shard));
  sentinel_.Resize(shards_.size());
}

void Simulation::ConfigureShards(int n) DMR_BARRIER_PHASE {
  DMR_CHECK_GE(n, 1);
  DMR_CHECK_LE(n, 1 << internal::kShardBits);
  for (const auto& sh : shards_) {
    DMR_CHECK_EQ(sh->next_seq, uint64_t{0})
        << "ConfigureShards must precede all scheduling";
  }
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) AddShard();
}

void Simulation::SetGlobalTieShuffle(std::optional<uint64_t> seed) {
  g_tie_shuffle = seed;
}

std::optional<uint64_t> Simulation::GlobalTieShuffle() {
  return g_tie_shuffle;
}

void Simulation::SetGlobalQueueKind(std::optional<QueueKind> kind) {
  g_queue_kind = kind;
}

std::optional<QueueKind> Simulation::GlobalQueueKind() {
  return g_queue_kind;
}

void Simulation::EnableTieShuffle(uint64_t seed) DMR_BARRIER_PHASE {
  for (const auto& sh : shards_) {
    DMR_CHECK_EQ(sh->next_seq, uint64_t{0})
        << "EnableTieShuffle must precede all scheduling";
  }
  tie_shuffle_ = true;
  tie_shuffle_seed_ = seed;
  for (const auto& sh : shards_) sh->queue.SetComparator(After());
}

void Simulation::NoteFired(internal::Shard* sh, SimTime time, uint64_t key) {
  const uint64_t cls = key >> internal::kClassShift;
  if (sh->events_fired > 1 && time == sh->last_fired_time &&
      cls == sh->last_fired_class) {
    ++sh->current_tie_group;
    // The first event of the group retroactively becomes tied too.
    sh->ties.tied_events += sh->current_tie_group == 2 ? 2 : 1;
    if (sh->current_tie_group == 2) ++sh->ties.groups;
    if (sh->current_tie_group > sh->ties.max_group) {
      sh->ties.max_group = sh->current_tie_group;
    }
  } else {
    sh->current_tie_group = 1;
    sh->last_fired_time = time;
    sh->last_fired_class = cls;
  }
}

void Simulation::CheckDelay(SimTime delay) const {
  DMR_CHECK_GE(delay, 0.0) << "negative delay " << delay;
}

// The arena hand-out seam: the sentinel verifies the caller owns the shard
// whose arena it is about to allocate from.
Arena* Simulation::ShardArena(int shard) DMR_CROSS_SHARD_OK {
  DMR_CHECK_GE(shard, 0);
  DMR_CHECK_LT(shard, static_cast<int>(shards_.size()));
  sentinel_.Check(static_cast<std::size_t>(shard), "ShardArena");
  return &shards_[static_cast<std::size_t>(shard)]->arena;
}

EventHandle Simulation::ScheduleLocal(int shard, SimTime when, EventClass cls,
                                      Callback fn) DMR_CROSS_SHARD_OK {
  sentinel_.Check(static_cast<std::size_t>(shard), "ScheduleLocal");
  internal::Shard* sh = shards_[static_cast<std::size_t>(shard)].get();
  const SimTime floor_now = parallel_phase_ ? sh->now : now_;
  DMR_CHECK_GE(when, floor_now) << "scheduling into the past";
  DMR_CHECK_LT(sh->next_seq, uint64_t{1} << internal::kSeqBits)
      << "sequence overflow";
  internal::EventSlot* slot = sh->pool->Acquire();
  slot->owner = this;
  slot->shard = static_cast<uint32_t>(shard);
  internal::SlotAddRef(slot);  // the queue's reference
  const uint64_t key =
      (static_cast<uint64_t>(cls) << internal::kClassShift) |
      (static_cast<uint64_t>(shard) << internal::kSeqBits) | sh->next_seq++;
  sh->queue.Push(internal::Event{when, key, std::move(fn), slot});
  return EventHandle(slot);
}

void Simulation::ScheduleLocalDetached(int shard, SimTime when,
                                       EventClass cls,
                                       Callback fn) DMR_CROSS_SHARD_OK {
  sentinel_.Check(static_cast<std::size_t>(shard), "ScheduleLocalDetached");
  internal::Shard* sh = shards_[static_cast<std::size_t>(shard)].get();
  const SimTime floor_now = parallel_phase_ ? sh->now : now_;
  DMR_CHECK_GE(when, floor_now) << "scheduling into the past";
  DMR_CHECK_LT(sh->next_seq, uint64_t{1} << internal::kSeqBits)
      << "sequence overflow";
  const uint64_t key =
      (static_cast<uint64_t>(cls) << internal::kClassShift) |
      (static_cast<uint64_t>(shard) << internal::kSeqBits) | sh->next_seq++;
  sh->queue.Push(internal::Event{when, key, std::move(fn), nullptr});
}

EventHandle Simulation::StageRemote(int target, SimTime when, EventClass cls,
                                    Callback fn) DMR_CROSS_SHARD_OK {
  DMR_CHECK_GE(target, 0);
  DMR_CHECK_LT(target, static_cast<int>(shards_.size()));
  DMR_CHECK_GE(when, epoch_end_)
      << "cross-shard schedule inside the lookahead window";
  const int source = CurrentShardIndex();
  // The write below goes into the TARGET's inbox, but the inbox column is
  // the source's: inbox[source] is only ever written by the source's
  // worker, so ownership of the caller's own shard is the invariant.
  sentinel_.Check(static_cast<std::size_t>(source), "StageRemote");
  shards_[static_cast<std::size_t>(target)]
      ->inbox[static_cast<std::size_t>(source)]
      .push_back(internal::StagedEvent{when, cls, std::move(fn)});
  return EventHandle();  // cross-shard events cannot be cancelled
}

void Simulation::ReleaseQueueRef(internal::EventSlot* slot) {
  slot->owner = nullptr;
  internal::SlotRelease(slot);
}

void Simulation::OnCancelled(internal::EventSlot* slot) DMR_CROSS_SHARD_OK {
  sentinel_.Check(slot->shard, "Cancel");
  internal::Shard* sh = shards_[slot->shard].get();
  if (parallel_phase_) {
    // A shard's slots (and handles) must stay on its worker thread; a
    // cross-shard Cancel would race the target queue.
    DMR_CHECK(internal::t_shard.sim == this &&
              internal::t_shard.shard == static_cast<int>(slot->shard))
        << "cross-shard Cancel during a parallel phase";
  }
  ++sh->cancelled_in_queue;
  MaybePurgeCancelled(sh);
}

void Simulation::MaybePurgeCancelled(internal::Shard* sh) {
  static constexpr std::size_t kMinCancelled = 64;
  if (sh->cancelled_in_queue < kMinCancelled) return;
  // Binary heap: sweep once tombstones reach 25% of the queue (every
  // skipped tombstone costs a full O(log n) pop). Calendar: wait for 50% —
  // tombstones in the near-future tier are compacted for free when their
  // bucket is sorted, so the global sweep (which walks every bucket
  // plus overflow) pays off only at higher densities. BM_SimCancelPurge
  // covers both boundaries.
  const std::size_t mult =
      sh->queue.kind() == QueueKind::kBinaryHeap ? 4 : 2;
  if (sh->cancelled_in_queue * mult < sh->queue.size()) return;
  sh->queue.PurgeCancelled();
}

// Serial engine: one thread owns every shard, by definition of serial.
bool Simulation::Step(SimTime limit) DMR_BARRIER_PHASE {
  internal::Shard* best = nullptr;
  int best_idx = 0;
  internal::Event* best_ev = nullptr;
  const internal::EventAfter after = After();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    internal::Event* ev = shards_[i]->queue.PeekLive();
    if (ev == nullptr) continue;
    if (best_ev == nullptr || after(*best_ev, *ev)) {
      best = shards_[i].get();
      best_idx = static_cast<int>(i);
      best_ev = ev;
    }
  }
  if (best == nullptr || best_ev->time > limit) return false;
  internal::Event ev = best->queue.PopLive();
  now_ = ev.time;
  best->now = ev.time;
  if (ev.slot != nullptr) {
    ev.slot->fired = true;
    ReleaseQueueRef(ev.slot);
  }
  ++best->events_fired;
  NoteFired(best, ev.time, ev.key);
  serial_current_shard_ = best_idx;
  ev.fn();
  serial_current_shard_ = 0;
  return true;
}

uint64_t Simulation::StepChunkedProf(SimTime limit, uint64_t max_events) {
  // Profiled dispatch loop: the frame's two clock reads are amortized over
  // up to 1024 events so enabled cost stays inside the sim_scale 2% budget.
  // Chunk boundaries never change which Step fires next, so the firing
  // order (and every digest) is identical to the unprofiled loop.
  static const prof::PhaseId kDispatchPhase =
      prof::RegisterPhase("sim", "dispatch");
  constexpr uint64_t kChunk = 1024;
  uint64_t fired = 0;
  while (fired < max_events) {
    const uint64_t budget = std::min(kChunk, max_events - fired);
    prof::BeginPhase(kDispatchPhase);
    uint64_t n = 0;
    while (n < budget && Step(limit)) ++n;
    prof::EndPhase(n);
    fired += n;
    if (n < budget) break;
  }
  return fired;
}

uint64_t Simulation::Run(uint64_t max_events) {
  if (prof::Enabled()) {
    static const prof::PhaseId kRunPhase = prof::RegisterPhase("sim", "run");
    prof::ScopedTimer prof_frame(kRunPhase);
    return StepChunkedProf(std::numeric_limits<SimTime>::infinity(),
                           max_events);
  }
  uint64_t fired = 0;
  while (fired < max_events &&
         Step(std::numeric_limits<SimTime>::infinity())) {
    ++fired;
  }
  return fired;
}

uint64_t Simulation::RunUntil(SimTime until) DMR_BARRIER_PHASE {
  uint64_t fired = 0;
  if (prof::Enabled()) {
    static const prof::PhaseId kRunUntilPhase =
        prof::RegisterPhase("sim", "run_until");
    prof::ScopedTimer prof_frame(kRunUntilPhase);
    fired = StepChunkedProf(until, std::numeric_limits<uint64_t>::max());
  } else {
    while (Step(until)) ++fired;
  }
  if (now_ < until) now_ = until;
  for (const auto& sh : shards_) {
    if (sh->now < until) sh->now = until;
  }
  return fired;
}

void Simulation::MergeStagedEvents() DMR_BARRIER_PHASE {
  static const prof::PhaseId kMergePhase =
      prof::RegisterPhase("sim", "merge_staged");
  prof::ScopedTimer prof_frame(kMergePhase);
  for (std::size_t target = 0; target < shards_.size(); ++target) {
    internal::Shard* sh = shards_[target].get();
    for (std::size_t source = 0; source < shards_.size(); ++source) {
      for (internal::StagedEvent& staged : sh->inbox[source]) {
        // Sequence numbers (and thus tie order) are assigned here, in
        // deterministic (target, source, staging) order. Staged events
        // never issued a handle, so they enqueue detached.
        ScheduleLocalDetached(static_cast<int>(target), staged.time,
                              staged.cls, std::move(staged.fn));
      }
      sh->inbox[source].clear();
    }
  }
}

uint64_t Simulation::RunParallel(int n_shards, SimTime until,
                                 SimTime lookahead) DMR_BARRIER_PHASE {
  DMR_CHECK(!parallel_phase_) << "RunParallel is not reentrant";
  DMR_CHECK_EQ(n_shards, static_cast<int>(shards_.size()))
      << "RunParallel(n) requires a prior ConfigureShards(n)";
  DMR_CHECK_GT(lookahead, 0.0);
  DMR_CHECK_GE(until, now_);
  static const prof::PhaseId kRunParallelPhase =
      prof::RegisterPhase("sim", "run_parallel");
  prof::ScopedTimer prof_frame(kRunParallelPhase);
  const uint64_t fired_before = events_fired();
  if (n_shards == 1) {
    // One shard has no cross-shard edges; the serial engine is the same
    // computation without thread overhead.
    return RunUntil(until);
  }
  for (const auto& sh : shards_) {
    sh->inbox.clear();
    sh->inbox.resize(shards_.size());
  }
  sentinel_.EnterParallel();
  parallel_phase_ = true;
  epoch_end_ = std::min(until, now_ + lookahead);
  bool done = false;

  // Runs on one worker thread while the rest are parked at the barrier, so
  // it may touch every shard exclusively. It merges the staged cross-shard
  // events, then either declares completion or opens the next epoch
  // (skipping ahead over idle gaps — the next window starts at the
  // earliest pending event).
  // DMR_BARRIER_PHASE is restated on the lambda: sanction does not flow
  // into lambda bodies (they may run on any worker thread), and this one
  // really is barrier-phase — it runs while every other worker is parked.
  std::function<void()> completion = [this, until, lookahead,
                                      &done] DMR_BARRIER_PHASE {
    sentinel_.OpenBarrier();
    MergeStagedEvents();
    SimTime tmin = std::numeric_limits<SimTime>::infinity();
    for (const auto& sh : shards_) {
      internal::Event* ev = sh->queue.PeekLive();
      if (ev != nullptr) tmin = std::min(tmin, ev->time);
    }
    if (tmin > until) {
      done = true;
      now_ = until;
      for (const auto& sh : shards_) sh->now = until;
      sentinel_.CloseBarrier();
      return;
    }
    const SimTime epoch_start = std::max(epoch_end_, tmin);
    epoch_end_ = std::min(until, epoch_start + lookahead);
    now_ = epoch_start;
    for (const auto& sh : shards_) {
      if (sh->now < epoch_start) sh->now = epoch_start;
    }
    sentinel_.CloseBarrier();
  };
  std::barrier<BarrierCompletion> barrier(n_shards,
                                          BarrierCompletion{&completion});

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n_shards));
  for (int i = 0; i < n_shards; ++i) {
    workers.emplace_back([this, i, until, &barrier, &done] {
      internal::t_shard = internal::TlsShard{this, i};
      // First act: claim this shard for this thread. The statement-level
      // annotation sanctions the one direct shards_ read a worker makes —
      // of its own entry.
      sentinel_.BindOwner(static_cast<std::size_t>(i));
      DMR_CROSS_SHARD_OK internal::Shard* sh =
          shards_[static_cast<std::size_t>(i)].get();
      // Worker frames are thread-local: each worker opens its own
      // sim.parallel_worker root with per-epoch dispatch and barrier-wait
      // children; Collect() merges the workers by name. `profiled` is
      // latched once so Begin/End stay paired even if profiling is toggled
      // mid-run from another thread.
      static const prof::PhaseId kWorkerPhase =
          prof::RegisterPhase("sim", "parallel_worker");
      static const prof::PhaseId kEpochPhase =
          prof::RegisterPhase("sim", "parallel_dispatch");
      static const prof::PhaseId kBarrierPhase =
          prof::RegisterPhase("sim", "barrier_wait");
      const bool profiled = prof::Enabled();
      if (profiled) prof::BeginPhase(kWorkerPhase);
      for (;;) {
        const SimTime bound = epoch_end_;
        // The final window is inclusive so events at exactly `until` fire,
        // matching RunUntil's boundary semantics.
        const bool final_window = bound >= until;
        if (profiled) prof::BeginPhase(kEpochPhase);
        uint64_t fired_in_epoch = 0;
        for (;;) {
          internal::Event* next = sh->queue.PeekLive();
          if (next == nullptr) break;
          if (final_window ? next->time > until : next->time >= bound) break;
          internal::Event ev = sh->queue.PopLive();
          sh->now = ev.time;
          if (ev.slot != nullptr) {
            ev.slot->fired = true;
            ReleaseQueueRef(ev.slot);
          }
          ++sh->events_fired;
          ++fired_in_epoch;
          NoteFired(sh, ev.time, ev.key);
          ev.fn();
        }
        if (profiled) prof::EndPhase(fired_in_epoch);
        if (profiled) prof::BeginPhase(kBarrierPhase);
        barrier.arrive_and_wait();
        if (profiled) prof::EndPhase(1);
        if (done) break;
      }
      if (profiled) prof::EndPhase(1);
      internal::t_shard = internal::TlsShard{};
    });
  }
  for (std::thread& t : workers) t.join();
  parallel_phase_ = false;
  sentinel_.ExitParallel();
  epoch_end_ = 0.0;
  return events_fired() - fired_before;
}

}  // namespace dmr::sim
