#include "sim/simulation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace dmr::sim {

namespace {

/// The process-wide tie-shuffle default; see SetGlobalTieShuffle.
std::optional<uint64_t> g_tie_shuffle;

/// SplitMix64's output finalizer over (seed XOR key): a bijection of the
/// key for any fixed seed, so distinct keys never collide and the shuffled
/// order is still total.
uint64_t ShuffleKey(uint64_t seed, uint64_t key) {
  return Rng(seed ^ key).Next();
}

}  // namespace

bool Simulation::EventAfter::operator()(const Event& a,
                                        const Event& b) const {
  if (a.time != b.time) return a.time > b.time;
  if (!shuffle) return a.seq > b.seq;
  const uint64_t a_class = a.seq >> kSeqBits;
  const uint64_t b_class = b.seq >> kSeqBits;
  if (a_class != b_class) return a_class > b_class;
  return ShuffleKey(seed, a.seq) > ShuffleKey(seed, b.seq);
}

namespace internal {

void EventSlotPool::Grow() {
  auto chunk = std::make_unique<EventSlot[]>(kChunkSlots);
  for (std::size_t i = 0; i < kChunkSlots; ++i) {
    chunk[i].pool = this;
    chunk[i].next_free = free_;
    free_ = &chunk[i];
  }
  chunks_.push_back(std::move(chunk));
}

}  // namespace internal

void EventHandle::Cancel() {
  if (!slot_ || slot_->cancelled || slot_->fired) return;
  slot_->cancelled = true;
  if (slot_->owner != nullptr) slot_->owner->OnCancelled();
}

Simulation::Simulation() : pool_(internal::EventSlotPool::Create()) {
  if (g_tie_shuffle.has_value()) EnableTieShuffle(*g_tie_shuffle);
}

void Simulation::SetGlobalTieShuffle(std::optional<uint64_t> seed) {
  g_tie_shuffle = seed;
}

std::optional<uint64_t> Simulation::GlobalTieShuffle() {
  return g_tie_shuffle;
}

void Simulation::EnableTieShuffle(uint64_t seed) {
  DMR_CHECK_EQ(next_seq_, uint64_t{0})
      << "EnableTieShuffle must precede all scheduling";
  tie_shuffle_ = true;
  tie_shuffle_seed_ = seed;
}

void Simulation::NoteFired(SimTime time, uint64_t key) {
  const uint64_t cls = key >> kSeqBits;
  if (events_fired_ > 1 && time == last_fired_time_ &&
      cls == last_fired_class_) {
    ++current_tie_group_;
    // The first event of the group retroactively becomes tied too.
    tie_stats_.tied_events += current_tie_group_ == 2 ? 2 : 1;
    if (current_tie_group_ == 2) ++tie_stats_.groups;
    if (current_tie_group_ > tie_stats_.max_group) {
      tie_stats_.max_group = current_tie_group_;
    }
  } else {
    current_tie_group_ = 1;
    last_fired_time_ = time;
    last_fired_class_ = cls;
  }
}

Simulation::~Simulation() {
  // Detach and release every still-queued event. Marking the slots
  // cancelled makes surviving handles report not-pending (the event can
  // never fire) and turns later Cancel() calls into no-ops; the slot memory
  // itself outlives us via the handles' pool references.
  for (Event& ev : heap_) {
    ev.slot->cancelled = true;
    ev.slot->owner = nullptr;
    internal::SlotRelease(ev.slot);
  }
  heap_.clear();
  pool_->DropOwnerRef();
}

EventHandle Simulation::Schedule(SimTime delay, Callback fn) {
  return Schedule(delay, EventClass::kDefault, std::move(fn));
}

EventHandle Simulation::Schedule(SimTime delay, EventClass cls, Callback fn) {
  DMR_CHECK_GE(delay, 0.0) << "negative delay " << delay;
  return ScheduleAt(now_ + delay, cls, std::move(fn));
}

EventHandle Simulation::ScheduleAt(SimTime when, Callback fn) {
  return ScheduleAt(when, EventClass::kDefault, std::move(fn));
}

EventHandle Simulation::ScheduleAt(SimTime when, EventClass cls,
                                   Callback fn) {
  DMR_CHECK_GE(when, now_) << "scheduling into the past";
  DMR_CHECK_LT(next_seq_, uint64_t{1} << kSeqBits) << "sequence overflow";
  internal::EventSlot* slot = pool_->Acquire();
  slot->owner = this;
  internal::SlotAddRef(slot);  // the queue's reference
  const uint64_t key =
      (static_cast<uint64_t>(cls) << kSeqBits) | next_seq_++;
  heap_.push_back(Event{when, key, std::move(fn), slot});
  std::push_heap(heap_.begin(), heap_.end(), After());
  return EventHandle(slot);
}

void Simulation::ReleaseQueueRef(internal::EventSlot* slot) {
  slot->owner = nullptr;
  internal::SlotRelease(slot);
}

void Simulation::OnCancelled() {
  ++cancelled_in_queue_;
  MaybePurgeCancelled();
}

void Simulation::MaybePurgeCancelled() {
  static constexpr size_t kMinCancelled = 64;
  if (cancelled_in_queue_ < kMinCancelled) return;
  if (cancelled_in_queue_ * 4 < heap_.size()) return;
  auto keep = heap_.begin();
  for (auto it = heap_.begin(); it != heap_.end(); ++it) {
    if (it->slot->cancelled) {
      ReleaseQueueRef(it->slot);
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  heap_.erase(keep, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), After());
  cancelled_in_queue_ = 0;
}

bool Simulation::Step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), After());
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (ev.slot->cancelled) {
      --cancelled_in_queue_;
      ReleaseQueueRef(ev.slot);
      continue;
    }
    now_ = ev.time;
    ev.slot->fired = true;
    ReleaseQueueRef(ev.slot);
    ++events_fired_;
    NoteFired(ev.time, ev.seq);
    ev.fn();
    return true;
  }
  return false;
}

uint64_t Simulation::Run(uint64_t max_events) {
  uint64_t fired = 0;
  while (fired < max_events && Step()) ++fired;
  return fired;
}

uint64_t Simulation::RunUntil(SimTime until) {
  uint64_t fired = 0;
  while (!heap_.empty()) {
    if (heap_.front().slot->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), After());
      Event ev = std::move(heap_.back());
      heap_.pop_back();
      --cancelled_in_queue_;
      ReleaseQueueRef(ev.slot);
      continue;
    }
    if (heap_.front().time > until) break;
    if (Step()) ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

}  // namespace dmr::sim
