#include "sim/simulation.h"

#include "common/logging.h"

namespace dmr::sim {

bool EventHandle::pending() const {
  return slot_ && !slot_->cancelled && !slot_->fired;
}

void EventHandle::Cancel() {
  if (slot_) slot_->cancelled = true;
}

EventHandle Simulation::Schedule(SimTime delay, Callback fn) {
  DMR_CHECK_GE(delay, 0.0) << "negative delay " << delay;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulation::ScheduleAt(SimTime when, Callback fn) {
  DMR_CHECK_GE(when, now_) << "scheduling into the past";
  auto slot = std::make_shared<EventHandle::Slot>();
  queue_.push(Event{when, next_seq_++, std::move(fn), slot});
  return EventHandle(slot);
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.slot->cancelled) continue;
    now_ = ev.time;
    ev.slot->fired = true;
    ++events_fired_;
    ev.fn();
    return true;
  }
  return false;
}

uint64_t Simulation::Run(uint64_t max_events) {
  uint64_t fired = 0;
  while (fired < max_events && Step()) ++fired;
  return fired;
}

uint64_t Simulation::RunUntil(SimTime until) {
  uint64_t fired = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (ev.slot->cancelled) {
      queue_.pop();
      continue;
    }
    if (ev.time > until) break;
    if (Step()) ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

}  // namespace dmr::sim
