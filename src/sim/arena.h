#ifndef DMR_SIM_ARENA_H_
#define DMR_SIM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "prof/prof.h"
#include "sim/affinity.h"

namespace dmr::sim {

/// \brief A chunked size-class arena for simulation objects.
///
/// The DES hot path allocates and frees the same few shapes millions of
/// times per run: spilled event callbacks, task-attempt records, completion
/// counters. Routing them through the global allocator costs a lock-free
/// malloc/free pair per event plus cache-scattered placement; the arena
/// replaces that with size-class free lists carved out of 64 KB chunks, so
/// a free is a pointer push and a hot allocation is a pointer pop from
/// memory that stays dense.
///
/// An Arena is single-threaded by contract, like the Simulation that owns
/// it (one arena per shard; see simulation.h). Freed blocks are recycled
/// into their size class, never returned to the OS before the arena dies —
/// the steady-state working set of a simulation is bounded by its peak, so
/// holding the high-water mark is the point, not a leak.
///
/// Blocks are 16-byte aligned. Requests larger than the biggest size class
/// (or with stricter alignment needs) fall through to operator new; the
/// caller passes the same byte count to Deallocate so the arena can tell
/// the two paths apart without a per-block header.
///
/// An Arena is shard-affine (sim/affinity.h): it is single-threaded by
/// construction, and under RunParallel only the owning shard's worker may
/// allocate or free from it — the nullptr-arena EventCallback spill box is
/// the sanctioned way to hand work across shards.
class DMR_SHARD_AFFINE Arena {
 public:
  Arena() = default;
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(std::size_t bytes) {
    int cls = ClassIndex(bytes);
    if (cls < 0) {
      prof::AccountAlloc(prof::AllocSite::kArenaLarge, 1, bytes);
      return ::operator new(bytes);
    }
    if (free_[cls] != nullptr) {
      FreeNode* node = free_[cls];
      free_[cls] = node->next;
      ++allocations_;
      return node;
    }
    return Carve(cls);
  }

  void Deallocate(void* p, std::size_t bytes) {
    if (p == nullptr) return;
    int cls = ClassIndex(bytes);
    if (cls < 0) {
      ::operator delete(p);
      return;
    }
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
  }

  /// Total bytes reserved from the OS in chunks (the arena's footprint).
  uint64_t bytes_reserved() const { return bytes_reserved_; }

  /// Lifetime count of arena-served allocations (large fall-throughs not
  /// included) — the malloc traffic the arena absorbed.
  uint64_t allocations() const { return allocations_; }

 private:
  /// Size classes are 16 << i for i in [0, kNumClasses): 16 B .. 8 KB.
  static constexpr int kNumClasses = 10;
  static constexpr std::size_t kMinBlock = 16;
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  struct FreeNode {
    FreeNode* next;
  };

  static int ClassIndex(std::size_t bytes) {
    std::size_t block = kMinBlock;
    for (int cls = 0; cls < kNumClasses; ++cls, block <<= 1) {
      if (bytes <= block) return cls;
    }
    return -1;
  }

  void* Carve(int cls);

  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  unsigned char* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  FreeNode* free_[kNumClasses] = {};
  uint64_t bytes_reserved_ = 0;
  uint64_t allocations_ = 0;
};

/// \brief Minimal std-compatible allocator over an Arena.
///
/// Lets standard machinery (std::allocate_shared, containers with bounded
/// lifetime) draw from a simulation's arena: the shared_ptr control block
/// and payload land in one arena block instead of a global malloc. The
/// arena must outlive everything allocated through it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= 16, "arena blocks are 16-byte aligned");
    return static_cast<T*>(arena_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    arena_->Deallocate(p, n * sizeof(T));
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace dmr::sim

#endif  // DMR_SIM_ARENA_H_
