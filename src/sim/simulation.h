#ifndef DMR_SIM_SIMULATION_H_
#define DMR_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.h"

namespace dmr::sim {

/// \brief Opaque handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the handle refers to an event that has neither fired nor been
  /// cancelled yet.
  bool pending() const;

  /// Cancels the event if still pending; safe to call repeatedly.
  void Cancel();

 private:
  friend class Simulation;
  struct Slot {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<Slot> slot) : slot_(std::move(slot)) {}
  std::shared_ptr<Slot> slot_;
};

/// \brief A deterministic discrete-event simulation kernel.
///
/// Events are (time, sequence) ordered; ties break by insertion order so a
/// run is exactly reproducible. Callbacks may schedule further events.
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle Schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at absolute virtual time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, Callback fn);

  /// Runs until the event queue is empty or `max_events` fired.
  /// Returns the number of events fired.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs until virtual time reaches `until` (events at exactly `until` are
  /// fired) or the queue empties. Time advances to `until` even if the queue
  /// empties earlier.
  uint64_t RunUntil(SimTime until);

  /// Number of events currently queued (including cancelled placeholders).
  size_t queue_size() const { return queue_.size(); }

  uint64_t events_fired() const { return events_fired_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
    std::shared_ptr<EventHandle::Slot> slot;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops and fires the next non-cancelled event; returns false if none.
  bool Step();

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
};

}  // namespace dmr::sim

#endif  // DMR_SIM_SIMULATION_H_
