#ifndef DMR_SIM_SIMULATION_H_
#define DMR_SIM_SIMULATION_H_

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"
#include "prof/prof.h"
#include "sim/affinity.h"
#include "sim/arena.h"

namespace dmr::sim {

class Simulation;

/// \brief Which priority-queue implementation backs a Simulation.
///
/// kCalendar is the default and the fast path: a two-tier calendar queue
/// (near-future time buckets plus an overflow tier) that only sorts a
/// bucket when it becomes current. kBinaryHeap is the original
/// std::push_heap queue, kept as the oracle: both produce bit-identical
/// firing order (see internal::EventQueue), and the equivalence tests and
/// tier-1 digest stages hold them to that.
enum class QueueKind : uint8_t {
  kCalendar = 0,
  kBinaryHeap = 1,
};

namespace internal {

/// \brief A move-only callable with small-buffer optimization, used in place
/// of std::function on the event hot path.
///
/// Callables that are trivially copyable and fit in kInlineBytes are stored
/// inline (no allocation, moves are byte copies); anything else spills to a
/// single out-of-line allocation. Event callbacks in this codebase
/// overwhelmingly capture a `this` pointer plus a couple of scalars, so the
/// inline path is the common case. The buffer is deliberately small: events
/// live inside the priority-queue storage, and every extra byte here is
/// moved on each sift.
///
/// The spill allocation is drawn from the owning shard's Arena when one is
/// supplied (the Simulation hot path), falling back to operator new for
/// arena-less construction — e.g. cross-shard staged events, whose spill
/// box is freed on the target shard's thread and therefore must not touch
/// the source shard's single-threaded arena. That nullptr-arena path is
/// the sanctioned spill-box exemption of the shard-ownership contract
/// (sim/affinity.h), which is why the class body carries the annotation:
/// the box remembers which arena (if any) it came from and frees itself
/// correctly wherever it is destroyed.
class DMR_CROSS_SHARD_OK EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 24;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& f)  // NOLINT(google-explicit-constructor)
      : EventCallback(static_cast<Arena*>(nullptr), std::forward<F>(f)) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(Arena* arena, F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(void*) &&
                  std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      ::new (static_cast<void*>(storage_.inline_bytes))
          Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*std::launder(
            reinterpret_cast<Fn*>(self->storage_.inline_bytes)))();
      };
      destroy_ = nullptr;
    } else if constexpr (alignof(Fn) <= 16) {
      struct Box {
        Arena* arena;
        Fn fn;
      };
      prof::AccountAlloc(prof::AllocSite::kCallbackSpill, 1, sizeof(Box));
      void* mem = arena != nullptr ? arena->Allocate(sizeof(Box))
                                   : ::operator new(sizeof(Box));
      storage_.heap = ::new (mem) Box{arena, Fn(std::forward<F>(f))};
      invoke_ = [](EventCallback* self) {
        static_cast<Box*>(self->storage_.heap)->fn();
      };
      destroy_ = [](EventCallback* self) {
        Box* box = static_cast<Box*>(self->storage_.heap);
        Arena* owner = box->arena;
        box->~Box();
        if (owner != nullptr) {
          owner->Deallocate(box, sizeof(Box));
        } else {
          ::operator delete(box);
        }
      };
    } else {
      // Over-aligned callables bypass the 16-byte-aligned arena entirely.
      prof::AccountAlloc(prof::AllocSite::kCallbackSpill, 1, sizeof(Fn));
      storage_.heap = new Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*static_cast<Fn*>(self->storage_.heap))();
      };
      destroy_ = [](EventCallback* self) {
        delete static_cast<Fn*>(self->storage_.heap);
      };
    }
  }

  EventCallback(EventCallback&& other) noexcept
      : storage_(other.storage_),
        invoke_(other.invoke_),
        destroy_(other.destroy_) {
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      storage_ = other.storage_;
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  void operator()() { invoke_(this); }
  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void Reset() {
    if (destroy_) destroy_(this);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  union Storage {
    alignas(void*) unsigned char inline_bytes[kInlineBytes];
    void* heap;
  } storage_;
  void (*invoke_)(EventCallback*) = nullptr;
  void (*destroy_)(EventCallback*) = nullptr;
};

class EventSlotPool;

/// \brief Cancellation state shared between a queued event and its handles.
///
/// Slots are allocated from an EventSlotPool free list and intrusively
/// ref-counted: the event queue holds one reference while the event is
/// pending, and each live EventHandle holds one. Refcounts are NOT atomic —
/// a Simulation and all handles derived from it must stay on one thread
/// (the determinism contract; see DESIGN.md). Under RunParallel each shard
/// has its own pool, and a shard's slots (and the handles wrapping them)
/// must stay on that shard's worker thread for the duration of the
/// parallel phase.
struct EventSlot {
  uint32_t refs = 0;
  /// Index of the shard whose queue holds the event (0 for the default
  /// single-shard configuration); routes Cancel() bookkeeping to the right
  /// per-shard counters.
  uint32_t shard = 0;
  bool cancelled = false;
  bool fired = false;
  /// Owning simulation while the event is queued; null once the event fired,
  /// was purged, or the simulation was destroyed. Used to maintain the
  /// cancelled-in-queue counter that drives batched purging.
  Simulation* owner = nullptr;
  EventSlotPool* pool = nullptr;
  EventSlot* next_free = nullptr;
};

/// \brief A chunked free-list allocator for EventSlots.
///
/// The pool itself is ref-counted: one reference is held by the owning
/// shard and one by every live slot, so slot memory stays valid even when
/// an EventHandle outlives the Simulation it came from. Shard-affine: the
/// refcount is deliberately unsynchronized, so every Acquire/Release must
/// come from the owning shard's thread.
class DMR_SHARD_AFFINE EventSlotPool {
 public:
  /// Creates a pool holding one owner reference (dropped via DropOwnerRef).
  static EventSlotPool* Create() { return new EventSlotPool(); }

  /// Returns a fresh slot with refs == 0; the pool gains one reference that
  /// is returned when the slot goes back on the free list.
  EventSlot* Acquire() {
    if (free_ == nullptr) Grow();
    EventSlot* slot = free_;
    free_ = slot->next_free;
    ++refs_;
    slot->refs = 0;
    slot->shard = 0;
    slot->cancelled = false;
    slot->fired = false;
    slot->owner = nullptr;
    return slot;
  }

  void ReleaseSlot(EventSlot* slot) {
    slot->next_free = free_;
    free_ = slot;
    Unref();
  }

  void DropOwnerRef() { Unref(); }

 private:
  static constexpr std::size_t kChunkSlots = 256;

  EventSlotPool() = default;
  ~EventSlotPool() = default;

  void Unref() {
    if (--refs_ == 0) delete this;
  }

  void Grow();

  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  EventSlot* free_ = nullptr;
  uint64_t refs_ = 1;  // the owner reference
};

inline void SlotAddRef(EventSlot* slot) { ++slot->refs; }

inline void SlotRelease(EventSlot* slot) {
  if (--slot->refs == 0) slot->pool->ReleaseSlot(slot);
}

}  // namespace internal

/// \brief Opaque handle to a scheduled event; allows cancellation.
///
/// Handles are cheap to copy (an intrusive refcount bump) and may safely
/// outlive the Simulation that issued them: the underlying slot storage is
/// kept alive by the handle's reference.
class EventHandle {
 public:
  EventHandle() = default;

  EventHandle(const EventHandle& other) : slot_(other.slot_) {
    if (slot_) internal::SlotAddRef(slot_);
  }
  EventHandle& operator=(const EventHandle& other) {
    if (this != &other) {
      if (other.slot_) internal::SlotAddRef(other.slot_);
      if (slot_) internal::SlotRelease(slot_);
      slot_ = other.slot_;
    }
    return *this;
  }
  EventHandle(EventHandle&& other) noexcept : slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      if (slot_) internal::SlotRelease(slot_);
      slot_ = other.slot_;
      other.slot_ = nullptr;
    }
    return *this;
  }
  ~EventHandle() {
    if (slot_) internal::SlotRelease(slot_);
  }

  /// True if the handle refers to an event that has neither fired nor been
  /// cancelled yet.
  bool pending() const {
    return slot_ && !slot_->cancelled && !slot_->fired;
  }

  /// Cancels the event if still pending; safe to call repeatedly.
  void Cancel();

 private:
  friend class Simulation;
  explicit EventHandle(internal::EventSlot* slot) : slot_(slot) {
    internal::SlotAddRef(slot_);
  }
  internal::EventSlot* slot_ = nullptr;
};

/// \brief Semantic phase of an event within one virtual instant.
///
/// Events at the same timestamp fire in ascending class order, which
/// resolves the cross-component races a discrete-event cluster simulator is
/// otherwise full of (a map completing at exactly the instant a heartbeat
/// fires, a provider growing input at an evaluation tick that collides with
/// a scheduling decision, a monitor sampling mid-decision). The contract at
/// one instant t is:
///
///   1. kTaskLifecycle — work that finished by t is credited first (slots
///      free, split/job state advances);
///   2. kInputGrowth   — input that arrives at t (provider decisions, user
///      job submissions) becomes visible;
///   3. kScheduling    — assignment decisions (heartbeats) then run against
///      a settled cluster state;
///   4. kDefault       — unclassified events;
///   5. kBookkeeping   — observers (monitors, samplers) see the
///      post-decision state;
///   6. kTelemetry     — meta-observers (the obs::Timeline tick) sample
///      strictly after every other handler at t, including bookkeeping.
///
/// kTelemetry exists because a timeline probe may read kernel statistics
/// (events fired, queue size) that ordinary bookkeeping handlers perturb:
/// if the sampling tick could tie with a monitor at the same instant, the
/// sampled value would depend on the tie order and the timeline would no
/// longer be byte-identical across --shuffle-ties seeds (DESIGN.md §15).
///
/// Within one (timestamp, class) group the relative order is genuinely
/// unconstrained: handlers must commute, and the tie-race detector plus
/// EnableTieShuffle exist to check exactly that property.
enum class EventClass : uint8_t {
  kTaskLifecycle = 16,
  kInputGrowth = 32,
  kScheduling = 48,
  kDefault = 64,
  kBookkeeping = 80,
  kTelemetry = 96,
};

/// \brief Virtual-time tie statistics maintained by the kernel's tie-race
/// detector.
///
/// A "tie group" is a maximal run of >= 2 events fired at exactly the same
/// virtual timestamp with the same EventClass. Nothing in the event API
/// constrains the relative order within such a group — the kernel picks
/// insertion order (or a seeded permutation of it under tie shuffling) — so
/// any output that depends on that order is a latent determinism bug. The
/// detector makes tie exposure measurable; the shuffle mode
/// (EnableTieShuffle) makes "order among ties never matters" a checked
/// property: digests must be byte-identical across shuffle seeds.
struct TieStats {
  /// Number of same-(timestamp, class) groups (size >= 2) fired so far.
  uint64_t groups = 0;
  /// Total events belonging to those groups.
  uint64_t tied_events = 0;
  /// Size of the largest group seen.
  uint64_t max_group = 0;
};

/// \brief Construction-time knobs for a Simulation.
struct SimulationOptions {
  QueueKind queue = QueueKind::kCalendar;
  /// Virtual seconds covered by one calendar bucket. The default is sized
  /// from the cluster heartbeat interval (3 s / 8): heartbeats — the
  /// densest recurring event family — land ~8 buckets apart, so a bucket
  /// holds one instant's worth of co-scheduled work rather than several
  /// heartbeat generations.
  double bucket_width = 0.375;
  /// Buckets in the near-future tier; with the default width this covers a
  /// 96 s window, past which events wait in the unsorted overflow tier.
  int num_buckets = 256;
};

namespace internal {

/// Bit layout of an event's packed tie-break key, compared as one u64:
///
///   [class: 8][shard: 12][seq: 44]
///
/// Class sits on top so same-timestamp events fire in EventClass order;
/// the shard index below it keeps keys unique across per-shard sequence
/// counters; the insertion sequence fills the low bits. A single-shard
/// simulation writes zero shard bits, making its keys numerically
/// identical to the pre-shard layout (class << 56 | seq) — which keeps
/// shuffle-seed digests stable across the refactor.
inline constexpr int kSeqBits = 44;
inline constexpr int kShardBits = 12;
inline constexpr int kClassShift = kSeqBits + kShardBits;

struct Event {
  SimTime time;
  /// Packed tie-break key; see kSeqBits above.
  uint64_t key;
  EventCallback fn;
  /// Queue's reference, released explicitly; null for detached events
  /// (no handle was issued, so there is nothing to cancel or refcount).
  EventSlot* slot;
};

/// Ordering predicate ("a fires after b") shared by both queue kinds.
/// When tie shuffling is on, same-(time, class) events are ordered by a
/// seeded bijective hash of the packed key instead of insertion order —
/// the hash is injective, so the order stays total and exactly
/// reproducible per seed.
struct EventAfter {
  bool shuffle = false;
  uint64_t seed = 0;
  bool operator()(const Event& a, const Event& b) const;
};

/// \brief The event priority queue: a two-tier calendar queue with a
/// binary-heap oracle mode.
///
/// Calendar mode partitions the near future into fixed-width time buckets
/// plus an unsorted overflow tier beyond the bucket horizon. Pushes append
/// to a bucket in O(1); only the *current* bucket is ever ordered (sorted
/// latest-first, lazily, when the dequeue cursor reaches it, making every
/// pop a plain pop_back). Because bucket index is a
/// monotone function of event time, no event in a later bucket can precede
/// any event in an earlier one, so draining buckets in order with a
/// per-bucket heap reproduces exactly the total order the binary heap
/// would produce — EventAfter is the single source of truth for order in
/// both modes, including under tie shuffling.
///
/// Cancelled events are compacted out of a bucket when it is sorted
/// (cheap, en route) and from the whole structure by PurgeCancelled()
/// (the batched path driven by Simulation::MaybePurgeCancelled).
class EventQueue {
 public:
  /// `cancelled_counter` is the owning shard's lazily-cancelled count; the
  /// queue decrements it whenever it releases a cancelled event.
  void Init(QueueKind kind, double bucket_width, int num_buckets,
            EventAfter after, std::size_t* cancelled_counter);

  /// Re-arms the comparator (tie shuffle enablement); queue must be empty.
  void SetComparator(EventAfter after) { after_ = after; }

  QueueKind kind() const { return kind_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void Push(Event&& ev);

  /// Returns the minimum live event per the comparator, dropping (and
  /// releasing) any cancelled events encountered on the way; null when the
  /// queue has no live events left. The pointer is invalidated by any
  /// other queue operation.
  Event* PeekLive();

  /// Removes and returns the event PeekLive() just returned. PeekLive()
  /// must have returned non-null with no intervening operations.
  Event PopLive();

  /// Sweeps every cancelled event out of the structure; returns the number
  /// removed.
  std::size_t PurgeCancelled();

  /// Teardown: invokes `fn` on every remaining event, then clears.
  template <typename Fn>
  void Drain(Fn&& fn) {
    for (Event& ev : heap_) fn(ev);
    heap_.clear();
    for (auto& bucket : buckets_) {
      for (Event& ev : bucket) fn(ev);
      bucket.clear();
    }
    for (Event& ev : overflow_) fn(ev);
    overflow_.clear();
    in_buckets_ = 0;
    size_ = 0;
  }

 private:
  /// Bucket for time `t`, clamped into [cur_, num_buckets): monotone in t,
  /// which is the property the order-equivalence argument rests on. The
  /// low clamp folds floating-point boundary wobble (and any event landing
  /// at the current instant) into the current bucket, where the in-bucket
  /// heap orders it correctly by time.
  std::size_t BucketIndex(SimTime t) const;

  /// Positions cur_ on a non-empty, sorted bucket (compacting cancelled
  /// events and refilling from overflow as needed). False when no events
  /// remain.
  bool PrepareCurrent();

  /// Rebases the bucket window at the earliest overflow event and
  /// redistributes everything inside the new horizon.
  void Refill();

  /// Removes cancelled events from `v`, releasing their slots; returns the
  /// number removed.
  std::size_t Compact(std::vector<Event>& v);

  void ReleaseCancelled(Event& ev);

  QueueKind kind_ = QueueKind::kCalendar;
  EventAfter after_;
  std::size_t* cancelled_counter_ = nullptr;

  // kBinaryHeap storage.
  std::vector<Event> heap_;

  // kCalendar storage.
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> overflow_;
  double width_ = 1.0;
  double inv_width_ = 1.0;  // 1 / width_: Push multiplies, never divides
  double epoch_ = 0.0;      // start time of buckets_[0]
  double horizon_ = 0.0;    // epoch_ + width_ * buckets_.size()
  std::size_t cur_ = 0;
  bool cur_sorted_ = false;
  std::size_t in_buckets_ = 0;  // events currently in buckets

  std::size_t size_ = 0;
};

/// \brief A staged cross-shard event, parked in the target shard's inbox
/// until the next barrier epoch assigns it a slot and sequence number.
struct StagedEvent {
  SimTime time;
  EventClass cls;
  EventCallback fn;
};

/// \brief Per-shard simulation state: queue, allocators, clocks, counters.
///
/// A default Simulation has exactly one shard; ConfigureShards(n) splits
/// the event space for RunParallel. Everything an event touches at fire
/// time lives here, so a shard worker thread runs without sharing mutable
/// state (pools and arenas are deliberately per-shard for that reason) —
/// the DMR_SHARD_AFFINE annotation makes that ownership machine-checkable
/// (sim/affinity.h).
struct DMR_SHARD_AFFINE Shard {
  Shard() : pool(EventSlotPool::Create()) {}
  ~Shard() {
    queue.Drain([](Event& ev) {
      if (ev.slot == nullptr) return;  // detached: nothing to release
      ev.slot->cancelled = true;
      ev.slot->owner = nullptr;
      SlotRelease(ev.slot);
    });
    pool->DropOwnerRef();
  }
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Declared before `queue`: draining the queue destroys callbacks whose
  /// spill boxes deallocate into this arena.
  Arena arena;
  EventSlotPool* pool;
  EventQueue queue;
  uint64_t next_seq = 0;
  SimTime now = 0.0;
  uint64_t events_fired = 0;
  std::size_t cancelled_in_queue = 0;

  // Tie-race detector state (merged across shards by tie_stats()).
  TieStats ties;
  SimTime last_fired_time = 0.0;
  uint64_t last_fired_class = 0;
  uint64_t current_tie_group = 0;

  /// inbox[s] holds events staged by shard s for this shard during the
  /// current parallel epoch; only shard s's worker writes it, and the
  /// barrier completion merges all inboxes in (target, source) order.
  std::vector<std::vector<StagedEvent>> inbox;
};

/// Thread-local shard binding, set by RunParallel workers so Now() and
/// default-shard Schedule calls resolve against the firing shard.
struct TlsShard {
  const Simulation* sim = nullptr;
  int shard = 0;
};
extern thread_local TlsShard t_shard;

}  // namespace internal

/// \brief A deterministic discrete-event simulation kernel.
///
/// Events are (time, class, sequence) ordered; ties break by insertion
/// order so a run is exactly reproducible. Callbacks may schedule further
/// events.
///
/// A Simulation is single-threaded by contract: all scheduling, running and
/// handle operations must happen on one thread. Independent Simulations on
/// different threads (one per experiment cell) are fully isolated — this is
/// the determinism contract the parallel experiment harness relies on.
///
/// RunParallel is the one sanctioned exception: after ConfigureShards(n),
/// it drives the n shard queues from n worker threads under a conservative
/// lookahead bound, with all cross-shard interaction funneled through
/// barrier epochs (see DESIGN.md §14). Serial Run()/RunUntil() over the
/// same sharded event program produces bit-identical per-shard results and
/// remains the oracle.
class Simulation {
 public:
  using Callback = internal::EventCallback;

  Simulation();
  explicit Simulation(const SimulationOptions& options);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time in seconds. Inside a RunParallel worker this is
  /// the firing shard's clock; otherwise the global clock (cross-shard OK:
  /// the worker only ever reads its own thread-bound shard's clock).
  SimTime Now() const DMR_CROSS_SHARD_OK {
    if (parallel_phase_ && internal::t_shard.sim == this) {
      return shards_[internal::t_shard.shard]->now;
    }
    return now_;
  }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0), in the
  /// kDefault phase of that instant.
  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  EventHandle Schedule(SimTime delay, F&& fn) {
    return Schedule(delay, EventClass::kDefault, std::forward<F>(fn));
  }

  /// Schedules `fn` with an explicit same-instant phase (see EventClass).
  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  EventHandle Schedule(SimTime delay, EventClass cls, F&& fn) {
    CheckDelay(delay);
    return ScheduleOnShard(CurrentShardIndex(), Now() + delay, cls,
                           std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute virtual time `when` (>= Now()).
  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  EventHandle ScheduleAt(SimTime when, F&& fn) {
    return ScheduleAt(when, EventClass::kDefault, std::forward<F>(fn));
  }

  /// Schedules `fn` at `when` with an explicit same-instant phase.
  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  EventHandle ScheduleAt(SimTime when, EventClass cls, F&& fn) {
    return ScheduleOnShard(CurrentShardIndex(), when, cls,
                           std::forward<F>(fn));
  }

  /// Schedules onto an explicit shard. Outside a parallel phase this is
  /// ordinary scheduling (the serial engine interleaves all shard queues
  /// into one total order). Inside a parallel phase, scheduling onto
  /// another shard stages the event for delivery at the next barrier and
  /// requires `when` to be at or past the current epoch end (the
  /// conservative-lookahead contract); staged events return an empty
  /// handle, as cross-shard cancellation is not supported.
  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  EventHandle ScheduleOnShard(int shard, SimTime when, EventClass cls,
                              F&& fn) DMR_CROSS_SHARD_OK {
    if (parallel_phase_ && shard != CurrentShardIndex()) {
      return StageRemote(shard, when, cls,
                         Callback(nullptr, std::forward<F>(fn)));
    }
    return ScheduleLocal(shard, when, cls,
                         Callback(ShardArena(shard), std::forward<F>(fn)));
  }

  /// Fire-and-forget variants: identical ordering semantics, but no
  /// EventHandle is issued, so the event cannot be cancelled and the
  /// kernel skips the cancellation-slot allocation and refcounting a
  /// handle requires. This is the fast path for the overwhelmingly common
  /// schedules whose handle would be discarded (heartbeat chains,
  /// monitors, completion callbacks).
  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  void ScheduleDetached(SimTime delay, EventClass cls, F&& fn) {
    CheckDelay(delay);
    ScheduleOnShardDetached(CurrentShardIndex(), Now() + delay, cls,
                            std::forward<F>(fn));
  }

  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  void ScheduleDetachedAt(SimTime when, EventClass cls, F&& fn) {
    ScheduleOnShardDetached(CurrentShardIndex(), when, cls,
                            std::forward<F>(fn));
  }

  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  void ScheduleOnShardDetached(int shard, SimTime when, EventClass cls,
                               F&& fn) DMR_CROSS_SHARD_OK {
    if (parallel_phase_ && shard != CurrentShardIndex()) {
      StageRemote(shard, when, cls, Callback(nullptr, std::forward<F>(fn)));
      return;
    }
    ScheduleLocalDetached(shard, when, cls,
                          Callback(ShardArena(shard), std::forward<F>(fn)));
  }

  /// Runs until the event queue is empty or `max_events` fired.
  /// Returns the number of events fired.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs until virtual time reaches `until` (events at exactly `until` are
  /// fired) or the queue empties. Time advances to `until` even if the queue
  /// empties earlier.
  uint64_t RunUntil(SimTime until);

  /// Splits the event space into `n` shard queues (1 <= n < 4096). Must be
  /// called before anything is scheduled. Events inherit the shard of the
  /// callback that schedules them (shard 0 outside callbacks); use
  /// ScheduleOnShard to cross. Serial Run()/RunUntil() interleave all
  /// shards into one deterministic total order.
  void ConfigureShards(int n);

  int num_shards() const DMR_CROSS_SHARD_OK {
    return static_cast<int>(shards_.size());  // fixed during an epoch
  }

  /// Runs events up to virtual time `until` on `n_shards` worker threads
  /// (one per shard; `n_shards` must equal num_shards()), synchronizing at
  /// conservative-lookahead barrier epochs of `lookahead` virtual seconds
  /// (default: the 3 s cluster heartbeat interval, the natural minimum
  /// cross-node reaction delay). During an epoch each worker fires only
  /// its own shard's events; cross-shard schedules must target times at or
  /// beyond the epoch end and are merged deterministically at the barrier.
  /// Per-shard state (clocks, counters, tie stats, firing order) is
  /// bit-identical to a serial RunUntil(until) of the same program.
  /// Returns the number of events fired.
  uint64_t RunParallel(int n_shards, SimTime until, SimTime lookahead = 3.0);

  /// Number of events currently queued, including lazily-cancelled
  /// placeholders not yet purged. Use live_size() to reason about whether
  /// anything can still fire. Cross-shard OK as a probe: callers during a
  /// parallel phase get a racy-by-design instantaneous sum.
  std::size_t queue_size() const DMR_CROSS_SHARD_OK {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->queue.size();
    return total;
  }

  /// Number of queued events that can still fire (queue_size() minus the
  /// cancelled placeholders). This is the quantity to DMR_CHECK when
  /// asserting a simulation has drained: a queue can be "non-empty" while
  /// holding nothing but tombstones below the purge threshold.
  std::size_t live_size() const {
    return queue_size() - cancelled_in_queue();
  }

  uint64_t events_fired() const DMR_CROSS_SHARD_OK {
    uint64_t total = 0;
    for (const auto& sh : shards_) total += sh->events_fired;
    return total;
  }

  /// Lazily-cancelled events still occupying the queue.
  std::size_t cancelled_in_queue() const DMR_CROSS_SHARD_OK {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->cancelled_in_queue;
    return total;
  }

  /// Replaces insertion-order tie-breaking with a seeded pseudo-random
  /// permutation of it: among events at one timestamp, firing order becomes
  /// a deterministic function of (seed, insertion index). Different seeds
  /// exercise different legal orders; a system whose outputs change with
  /// the seed has a tie race. Must be called before anything is scheduled.
  void EnableTieShuffle(uint64_t seed);

  bool tie_shuffle_enabled() const { return tie_shuffle_; }
  uint64_t tie_shuffle_seed() const { return tie_shuffle_seed_; }

  /// Tie-race detector counters, merged across shards (maintained
  /// unconditionally; the cost is one timestamp compare per fired event).
  TieStats tie_stats() const DMR_CROSS_SHARD_OK {
    TieStats total;
    for (const auto& sh : shards_) {
      total.groups += sh->ties.groups;
      total.tied_events += sh->ties.tied_events;
      total.max_group = std::max(total.max_group, sh->ties.max_group);
    }
    return total;
  }

  /// The shard-0 arena: scratch allocator for simulation-lifetime objects
  /// owned by single-threaded consumers (task attempts, completion
  /// counters). Everything allocated from it must be released before the
  /// Simulation is destroyed. Cross-shard OK only because its callers are
  /// serial-phase by contract; the affinity sentinel still checks shard 0
  /// ownership dynamically through ShardArena.
  Arena* arena() DMR_CROSS_SHARD_OK { return &shards_[0]->arena; }

  const SimulationOptions& options() const { return options_; }

  /// Toggles the shard-affinity sentinel (sim/affinity.h) for this
  /// simulation. The sentinel is observation-only — enabling it cannot
  /// change any output — and defaults to AffinitySentinel::DefaultEnabled()
  /// (env DMR_SHARD_SENTINEL, else -DDMR_SHARD_SENTINEL_DEFAULT, which the
  /// tsan/asan presets set).
  void EnableAffinitySentinel(bool on) { sentinel_.set_enabled(on); }
  bool affinity_sentinel_enabled() const { return sentinel_.enabled(); }

  /// Asserts the calling thread may touch `shard` right now (no-op unless
  /// a parallel phase is live and the sentinel is enabled). Components
  /// holding shard-affine state of their own call this from their mutation
  /// paths; it is also the hook the sentinel death test drives.
  void CheckShardAccess(int shard) const {
    sentinel_.Check(static_cast<std::size_t>(shard), "CheckShardAccess");
  }

  /// Process-wide default applied to every subsequently constructed
  /// Simulation (the `--shuffle-ties=SEED` bench flag sets this once at
  /// startup, before worker threads exist; nullopt restores insertion
  /// order). Not synchronized — set it only while single-threaded.
  static void SetGlobalTieShuffle(std::optional<uint64_t> seed);
  static std::optional<uint64_t> GlobalTieShuffle();

  /// Process-wide queue-kind override applied to every subsequently
  /// constructed Simulation, taking precedence over per-instance options
  /// (the `--queue=heap|calendar` bench flag sets this once at startup).
  /// Not synchronized — set it only while single-threaded.
  static void SetGlobalQueueKind(std::optional<QueueKind> kind);
  static std::optional<QueueKind> GlobalQueueKind();

 private:
  friend class EventHandle;

  /// The shard new events land on: the firing shard inside a callback
  /// (worker-thread-local during parallel phases), shard 0 otherwise.
  int CurrentShardIndex() const {
    if (parallel_phase_ && internal::t_shard.sim == this) {
      return internal::t_shard.shard;
    }
    return serial_current_shard_;
  }

  internal::EventAfter After() const {
    return internal::EventAfter{tie_shuffle_, tie_shuffle_seed_};
  }

  void CheckDelay(SimTime delay) const;
  Arena* ShardArena(int shard);
  EventHandle ScheduleLocal(int shard, SimTime when, EventClass cls,
                            Callback fn);
  void ScheduleLocalDetached(int shard, SimTime when, EventClass cls,
                             Callback fn);
  EventHandle StageRemote(int target, SimTime when, EventClass cls,
                          Callback fn);

  /// Pops and fires the next non-cancelled event across all shard queues
  /// (serial engine); returns false if none remains at or before `limit`.
  bool Step(SimTime limit);

  /// The profiled serial dispatch loop: identical Step sequence to
  /// Run/RunUntil, with the prof frame's clock reads amortized over
  /// ~1k-event chunks (sim.dispatch). Returns the number fired.
  uint64_t StepChunkedProf(SimTime limit, uint64_t max_events);

  /// Called by EventHandle::Cancel for a still-queued event.
  void OnCancelled(internal::EventSlot* slot);

  /// Sweeps the shard's queue once cancelled events exceed a kind-specific
  /// share of it (see simulation.cc for the thresholds and rationale).
  void MaybePurgeCancelled(internal::Shard* sh);

  /// Drops the queue's reference on a slot that is leaving the queue.
  void ReleaseQueueRef(internal::EventSlot* slot);

  /// Tie-race detector bookkeeping for one fired event on `sh`.
  void NoteFired(internal::Shard* sh, SimTime time, uint64_t key);

  /// Barrier-epoch completion: drains every shard's staging inboxes into
  /// the target queues in deterministic (target, source, stage) order.
  void MergeStagedEvents();

  void AddShard();

  SimulationOptions options_;
  SimTime now_ = 0.0;
  bool tie_shuffle_ = false;
  uint64_t tie_shuffle_seed_ = 0;
  /// Shard receiving default-scheduled events while the serial engine runs
  /// a callback (events inherit the firing event's shard).
  int serial_current_shard_ = 0;
  bool parallel_phase_ = false;
  /// End of the current parallel epoch; cross-shard schedules must target
  /// times at or past it. Written only inside barrier completions.
  SimTime epoch_end_ = 0.0;
  DMR_SHARD_AFFINE std::vector<std::unique_ptr<internal::Shard>> shards_;
  /// Run-time enforcement of the same contract the annotations document.
  AffinitySentinel sentinel_;
};

}  // namespace dmr::sim

#endif  // DMR_SIM_SIMULATION_H_
