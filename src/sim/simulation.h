#ifndef DMR_SIM_SIMULATION_H_
#define DMR_SIM_SIMULATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"

namespace dmr::sim {

class Simulation;

namespace internal {

/// \brief A move-only callable with small-buffer optimization, used in place
/// of std::function on the event hot path.
///
/// Callables that are trivially copyable and fit in kInlineBytes are stored
/// inline (no allocation, moves are byte copies); anything else falls back to
/// a single heap allocation. Event callbacks in this codebase overwhelmingly
/// capture a `this` pointer plus a couple of scalars, so the inline path is
/// the common case. The buffer is deliberately small: events live inside the
/// priority-queue heap, and every extra byte here is moved on each sift.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 24;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(void*) &&
                  std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      ::new (static_cast<void*>(storage_.inline_bytes))
          Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*std::launder(
            reinterpret_cast<Fn*>(self->storage_.inline_bytes)))();
      };
      destroy_ = nullptr;
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*static_cast<Fn*>(self->storage_.heap))();
      };
      destroy_ = [](EventCallback* self) {
        delete static_cast<Fn*>(self->storage_.heap);
      };
    }
  }

  EventCallback(EventCallback&& other) noexcept
      : storage_(other.storage_),
        invoke_(other.invoke_),
        destroy_(other.destroy_) {
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      storage_ = other.storage_;
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  void operator()() { invoke_(this); }
  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void Reset() {
    if (destroy_) destroy_(this);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  union Storage {
    alignas(void*) unsigned char inline_bytes[kInlineBytes];
    void* heap;
  } storage_;
  void (*invoke_)(EventCallback*) = nullptr;
  void (*destroy_)(EventCallback*) = nullptr;
};

class EventSlotPool;

/// \brief Cancellation state shared between a queued event and its handles.
///
/// Slots are allocated from an EventSlotPool free list and intrusively
/// ref-counted: the event queue holds one reference while the event is
/// pending, and each live EventHandle holds one. Refcounts are NOT atomic —
/// a Simulation and all handles derived from it must stay on one thread
/// (the determinism contract; see DESIGN.md).
struct EventSlot {
  uint32_t refs = 0;
  bool cancelled = false;
  bool fired = false;
  /// Owning simulation while the event is queued; null once the event fired,
  /// was purged, or the simulation was destroyed. Used to maintain the
  /// cancelled-in-queue counter that drives batched purging.
  Simulation* owner = nullptr;
  EventSlotPool* pool = nullptr;
  EventSlot* next_free = nullptr;
};

/// \brief A chunked free-list allocator for EventSlots.
///
/// The pool itself is ref-counted: one reference is held by the owning
/// Simulation and one by every live slot, so slot memory stays valid even
/// when an EventHandle outlives the Simulation it came from.
class EventSlotPool {
 public:
  /// Creates a pool holding one owner reference (dropped via DropOwnerRef).
  static EventSlotPool* Create() { return new EventSlotPool(); }

  /// Returns a fresh slot with refs == 0; the pool gains one reference that
  /// is returned when the slot goes back on the free list.
  EventSlot* Acquire() {
    if (free_ == nullptr) Grow();
    EventSlot* slot = free_;
    free_ = slot->next_free;
    ++refs_;
    slot->refs = 0;
    slot->cancelled = false;
    slot->fired = false;
    slot->owner = nullptr;
    return slot;
  }

  void ReleaseSlot(EventSlot* slot) {
    slot->next_free = free_;
    free_ = slot;
    Unref();
  }

  void DropOwnerRef() { Unref(); }

 private:
  static constexpr std::size_t kChunkSlots = 256;

  EventSlotPool() = default;
  ~EventSlotPool() = default;

  void Unref() {
    if (--refs_ == 0) delete this;
  }

  void Grow();

  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  EventSlot* free_ = nullptr;
  uint64_t refs_ = 1;  // the owner reference
};

inline void SlotAddRef(EventSlot* slot) { ++slot->refs; }

inline void SlotRelease(EventSlot* slot) {
  if (--slot->refs == 0) slot->pool->ReleaseSlot(slot);
}

}  // namespace internal

/// \brief Opaque handle to a scheduled event; allows cancellation.
///
/// Handles are cheap to copy (an intrusive refcount bump) and may safely
/// outlive the Simulation that issued them: the underlying slot storage is
/// kept alive by the handle's reference.
class EventHandle {
 public:
  EventHandle() = default;

  EventHandle(const EventHandle& other) : slot_(other.slot_) {
    if (slot_) internal::SlotAddRef(slot_);
  }
  EventHandle& operator=(const EventHandle& other) {
    if (this != &other) {
      if (other.slot_) internal::SlotAddRef(other.slot_);
      if (slot_) internal::SlotRelease(slot_);
      slot_ = other.slot_;
    }
    return *this;
  }
  EventHandle(EventHandle&& other) noexcept : slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      if (slot_) internal::SlotRelease(slot_);
      slot_ = other.slot_;
      other.slot_ = nullptr;
    }
    return *this;
  }
  ~EventHandle() {
    if (slot_) internal::SlotRelease(slot_);
  }

  /// True if the handle refers to an event that has neither fired nor been
  /// cancelled yet.
  bool pending() const {
    return slot_ && !slot_->cancelled && !slot_->fired;
  }

  /// Cancels the event if still pending; safe to call repeatedly.
  void Cancel();

 private:
  friend class Simulation;
  explicit EventHandle(internal::EventSlot* slot) : slot_(slot) {
    internal::SlotAddRef(slot_);
  }
  internal::EventSlot* slot_ = nullptr;
};

/// \brief Semantic phase of an event within one virtual instant.
///
/// Events at the same timestamp fire in ascending class order, which
/// resolves the cross-component races a discrete-event cluster simulator is
/// otherwise full of (a map completing at exactly the instant a heartbeat
/// fires, a provider growing input at an evaluation tick that collides with
/// a scheduling decision, a monitor sampling mid-decision). The contract at
/// one instant t is:
///
///   1. kTaskLifecycle — work that finished by t is credited first (slots
///      free, split/job state advances);
///   2. kInputGrowth   — input that arrives at t (provider decisions, user
///      job submissions) becomes visible;
///   3. kScheduling    — assignment decisions (heartbeats) then run against
///      a settled cluster state;
///   4. kDefault       — unclassified events;
///   5. kBookkeeping   — observers (monitors, samplers) see the
///      post-decision state.
///
/// Within one (timestamp, class) group the relative order is genuinely
/// unconstrained: handlers must commute, and the tie-race detector plus
/// EnableTieShuffle exist to check exactly that property.
enum class EventClass : uint8_t {
  kTaskLifecycle = 16,
  kInputGrowth = 32,
  kScheduling = 48,
  kDefault = 64,
  kBookkeeping = 80,
};

/// \brief Virtual-time tie statistics maintained by the kernel's tie-race
/// detector.
///
/// A "tie group" is a maximal run of >= 2 events fired at exactly the same
/// virtual timestamp with the same EventClass. Nothing in the event API
/// constrains the relative order within such a group — the kernel picks
/// insertion order (or a seeded permutation of it under tie shuffling) — so
/// any output that depends on that order is a latent determinism bug. The
/// detector makes tie exposure measurable; the shuffle mode
/// (EnableTieShuffle) makes "order among ties never matters" a checked
/// property: digests must be byte-identical across shuffle seeds.
struct TieStats {
  /// Number of same-(timestamp, class) groups (size >= 2) fired so far.
  uint64_t groups = 0;
  /// Total events belonging to those groups.
  uint64_t tied_events = 0;
  /// Size of the largest group seen.
  uint64_t max_group = 0;
};

/// \brief A deterministic discrete-event simulation kernel.
///
/// Events are (time, sequence) ordered; ties break by insertion order so a
/// run is exactly reproducible. Callbacks may schedule further events.
///
/// A Simulation is single-threaded by contract: all scheduling, running and
/// handle operations must happen on one thread. Independent Simulations on
/// different threads (one per experiment cell) are fully isolated — this is
/// the determinism contract the parallel experiment harness relies on.
class Simulation {
 public:
  using Callback = internal::EventCallback;

  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0), in the
  /// kDefault phase of that instant.
  EventHandle Schedule(SimTime delay, Callback fn);

  /// Schedules `fn` with an explicit same-instant phase (see EventClass).
  EventHandle Schedule(SimTime delay, EventClass cls, Callback fn);

  /// Schedules `fn` at absolute virtual time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, Callback fn);

  /// Schedules `fn` at `when` with an explicit same-instant phase.
  EventHandle ScheduleAt(SimTime when, EventClass cls, Callback fn);

  /// Runs until the event queue is empty or `max_events` fired.
  /// Returns the number of events fired.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs until virtual time reaches `until` (events at exactly `until` are
  /// fired) or the queue empties. Time advances to `until` even if the queue
  /// empties earlier.
  uint64_t RunUntil(SimTime until);

  /// Number of events currently queued (including cancelled placeholders
  /// not yet purged).
  size_t queue_size() const { return heap_.size(); }

  uint64_t events_fired() const { return events_fired_; }

  /// Lazily-cancelled events still occupying the queue.
  size_t cancelled_in_queue() const { return cancelled_in_queue_; }

  /// Replaces insertion-order tie-breaking with a seeded pseudo-random
  /// permutation of it: among events at one timestamp, firing order becomes
  /// a deterministic function of (seed, insertion index). Different seeds
  /// exercise different legal orders; a system whose outputs change with
  /// the seed has a tie race. Must be called before anything is scheduled.
  void EnableTieShuffle(uint64_t seed);

  bool tie_shuffle_enabled() const { return tie_shuffle_; }
  uint64_t tie_shuffle_seed() const { return tie_shuffle_seed_; }

  /// Tie-race detector counters (maintained unconditionally; the cost is
  /// one timestamp compare per fired event).
  const TieStats& tie_stats() const { return tie_stats_; }

  /// Process-wide default applied to every subsequently constructed
  /// Simulation (the `--shuffle-ties=SEED` bench flag sets this once at
  /// startup, before worker threads exist; nullopt restores insertion
  /// order). Not synchronized — set it only while single-threaded.
  static void SetGlobalTieShuffle(std::optional<uint64_t> seed);
  static std::optional<uint64_t> GlobalTieShuffle();

 private:
  friend class EventHandle;

  /// Bits of `seq` carrying the insertion sequence number; the EventClass
  /// lives in the bits above so one u64 compare yields (class, insertion)
  /// order among same-timestamp events.
  static constexpr int kSeqBits = 56;

  struct Event {
    SimTime time;
    /// Packed tie-break key: (EventClass << kSeqBits) | insertion sequence.
    uint64_t seq;
    Callback fn;
    internal::EventSlot* slot;  // queue's reference, released explicitly
  };
  /// Heap comparator for std::push_heap/pop_heap (max-heap semantics, so
  /// "after" ordering yields the earliest event at the front). When tie
  /// shuffling is on, same-(time, class) events are ordered by a seeded
  /// bijective hash of the packed key instead of insertion order — the
  /// hash is injective, so the order stays total and exactly reproducible
  /// per seed.
  struct EventAfter {
    bool shuffle = false;
    uint64_t seed = 0;
    bool operator()(const Event& a, const Event& b) const;
  };
  EventAfter After() const { return EventAfter{tie_shuffle_, tie_shuffle_seed_}; }

  /// Pops and fires the next non-cancelled event; returns false if none.
  bool Step();

  /// Called by EventHandle::Cancel for a still-queued event.
  void OnCancelled();

  /// Rebuilds the heap without the cancelled events once they exceed a
  /// quarter of the queue (and a minimum count, to avoid churn on tiny
  /// queues).
  void MaybePurgeCancelled();

  /// Drops the queue's reference on a slot that is leaving the queue.
  void ReleaseQueueRef(internal::EventSlot* slot);

  /// Tie-race detector bookkeeping for one fired event; `key` is the
  /// packed (class | insertion) key.
  void NoteFired(SimTime time, uint64_t key);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_fired_ = 0;
  size_t cancelled_in_queue_ = 0;
  bool tie_shuffle_ = false;
  uint64_t tie_shuffle_seed_ = 0;
  TieStats tie_stats_;
  SimTime last_fired_time_ = 0.0;
  uint64_t last_fired_class_ = 0;
  uint64_t current_tie_group_ = 0;
  std::vector<Event> heap_;
  internal::EventSlotPool* pool_;
};

}  // namespace dmr::sim

#endif  // DMR_SIM_SIMULATION_H_
