#ifndef DMR_SIM_SIMULATION_H_
#define DMR_SIM_SIMULATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"

namespace dmr::sim {

class Simulation;

namespace internal {

/// \brief A move-only callable with small-buffer optimization, used in place
/// of std::function on the event hot path.
///
/// Callables that are trivially copyable and fit in kInlineBytes are stored
/// inline (no allocation, moves are byte copies); anything else falls back to
/// a single heap allocation. Event callbacks in this codebase overwhelmingly
/// capture a `this` pointer plus a couple of scalars, so the inline path is
/// the common case. The buffer is deliberately small: events live inside the
/// priority-queue heap, and every extra byte here is moved on each sift.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 24;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(void*) &&
                  std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      ::new (static_cast<void*>(storage_.inline_bytes))
          Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*std::launder(
            reinterpret_cast<Fn*>(self->storage_.inline_bytes)))();
      };
      destroy_ = nullptr;
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
      invoke_ = [](EventCallback* self) {
        (*static_cast<Fn*>(self->storage_.heap))();
      };
      destroy_ = [](EventCallback* self) {
        delete static_cast<Fn*>(self->storage_.heap);
      };
    }
  }

  EventCallback(EventCallback&& other) noexcept
      : storage_(other.storage_),
        invoke_(other.invoke_),
        destroy_(other.destroy_) {
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      storage_ = other.storage_;
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  void operator()() { invoke_(this); }
  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void Reset() {
    if (destroy_) destroy_(this);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  union Storage {
    alignas(void*) unsigned char inline_bytes[kInlineBytes];
    void* heap;
  } storage_;
  void (*invoke_)(EventCallback*) = nullptr;
  void (*destroy_)(EventCallback*) = nullptr;
};

class EventSlotPool;

/// \brief Cancellation state shared between a queued event and its handles.
///
/// Slots are allocated from an EventSlotPool free list and intrusively
/// ref-counted: the event queue holds one reference while the event is
/// pending, and each live EventHandle holds one. Refcounts are NOT atomic —
/// a Simulation and all handles derived from it must stay on one thread
/// (the determinism contract; see DESIGN.md).
struct EventSlot {
  uint32_t refs = 0;
  bool cancelled = false;
  bool fired = false;
  /// Owning simulation while the event is queued; null once the event fired,
  /// was purged, or the simulation was destroyed. Used to maintain the
  /// cancelled-in-queue counter that drives batched purging.
  Simulation* owner = nullptr;
  EventSlotPool* pool = nullptr;
  EventSlot* next_free = nullptr;
};

/// \brief A chunked free-list allocator for EventSlots.
///
/// The pool itself is ref-counted: one reference is held by the owning
/// Simulation and one by every live slot, so slot memory stays valid even
/// when an EventHandle outlives the Simulation it came from.
class EventSlotPool {
 public:
  /// Creates a pool holding one owner reference (dropped via DropOwnerRef).
  static EventSlotPool* Create() { return new EventSlotPool(); }

  /// Returns a fresh slot with refs == 0; the pool gains one reference that
  /// is returned when the slot goes back on the free list.
  EventSlot* Acquire() {
    if (free_ == nullptr) Grow();
    EventSlot* slot = free_;
    free_ = slot->next_free;
    ++refs_;
    slot->refs = 0;
    slot->cancelled = false;
    slot->fired = false;
    slot->owner = nullptr;
    return slot;
  }

  void ReleaseSlot(EventSlot* slot) {
    slot->next_free = free_;
    free_ = slot;
    Unref();
  }

  void DropOwnerRef() { Unref(); }

 private:
  static constexpr std::size_t kChunkSlots = 256;

  EventSlotPool() = default;
  ~EventSlotPool() = default;

  void Unref() {
    if (--refs_ == 0) delete this;
  }

  void Grow();

  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  EventSlot* free_ = nullptr;
  uint64_t refs_ = 1;  // the owner reference
};

inline void SlotAddRef(EventSlot* slot) { ++slot->refs; }

inline void SlotRelease(EventSlot* slot) {
  if (--slot->refs == 0) slot->pool->ReleaseSlot(slot);
}

}  // namespace internal

/// \brief Opaque handle to a scheduled event; allows cancellation.
///
/// Handles are cheap to copy (an intrusive refcount bump) and may safely
/// outlive the Simulation that issued them: the underlying slot storage is
/// kept alive by the handle's reference.
class EventHandle {
 public:
  EventHandle() = default;

  EventHandle(const EventHandle& other) : slot_(other.slot_) {
    if (slot_) internal::SlotAddRef(slot_);
  }
  EventHandle& operator=(const EventHandle& other) {
    if (this != &other) {
      if (other.slot_) internal::SlotAddRef(other.slot_);
      if (slot_) internal::SlotRelease(slot_);
      slot_ = other.slot_;
    }
    return *this;
  }
  EventHandle(EventHandle&& other) noexcept : slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      if (slot_) internal::SlotRelease(slot_);
      slot_ = other.slot_;
      other.slot_ = nullptr;
    }
    return *this;
  }
  ~EventHandle() {
    if (slot_) internal::SlotRelease(slot_);
  }

  /// True if the handle refers to an event that has neither fired nor been
  /// cancelled yet.
  bool pending() const {
    return slot_ && !slot_->cancelled && !slot_->fired;
  }

  /// Cancels the event if still pending; safe to call repeatedly.
  void Cancel();

 private:
  friend class Simulation;
  explicit EventHandle(internal::EventSlot* slot) : slot_(slot) {
    internal::SlotAddRef(slot_);
  }
  internal::EventSlot* slot_ = nullptr;
};

/// \brief A deterministic discrete-event simulation kernel.
///
/// Events are (time, sequence) ordered; ties break by insertion order so a
/// run is exactly reproducible. Callbacks may schedule further events.
///
/// A Simulation is single-threaded by contract: all scheduling, running and
/// handle operations must happen on one thread. Independent Simulations on
/// different threads (one per experiment cell) are fully isolated — this is
/// the determinism contract the parallel experiment harness relies on.
class Simulation {
 public:
  using Callback = internal::EventCallback;

  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle Schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at absolute virtual time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, Callback fn);

  /// Runs until the event queue is empty or `max_events` fired.
  /// Returns the number of events fired.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs until virtual time reaches `until` (events at exactly `until` are
  /// fired) or the queue empties. Time advances to `until` even if the queue
  /// empties earlier.
  uint64_t RunUntil(SimTime until);

  /// Number of events currently queued (including cancelled placeholders
  /// not yet purged).
  size_t queue_size() const { return heap_.size(); }

  uint64_t events_fired() const { return events_fired_; }

  /// Lazily-cancelled events still occupying the queue.
  size_t cancelled_in_queue() const { return cancelled_in_queue_; }

 private:
  friend class EventHandle;

  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
    internal::EventSlot* slot;  // queue's reference, released explicitly
  };
  /// Heap comparator for std::push_heap/pop_heap (max-heap semantics, so
  /// "after" ordering yields the earliest event at the front).
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops and fires the next non-cancelled event; returns false if none.
  bool Step();

  /// Called by EventHandle::Cancel for a still-queued event.
  void OnCancelled();

  /// Rebuilds the heap without the cancelled events once they exceed a
  /// quarter of the queue (and a minimum count, to avoid churn on tiny
  /// queues).
  void MaybePurgeCancelled();

  /// Drops the queue's reference on a slot that is leaving the queue.
  void ReleaseQueueRef(internal::EventSlot* slot);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_fired_ = 0;
  size_t cancelled_in_queue_ = 0;
  std::vector<Event> heap_;
  internal::EventSlotPool* pool_;
};

}  // namespace dmr::sim

#endif  // DMR_SIM_SIMULATION_H_
