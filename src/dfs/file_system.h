#ifndef DMR_DFS_FILE_SYSTEM_H_
#define DMR_DFS_FILE_SYSTEM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/scope.h"

namespace dmr::dfs {

/// \brief Physical layout of one stored replica copy.
///
/// Following "Only Aggressive Elephants are Fast Elephants" (Dittrich et
/// al.), each copy of a partition may keep its own layout, so the
/// scheduler can pick the cheapest copy for a filtered scan rather than
/// merely the closest. kRow is the paper's plain un-indexed file (full
/// read always); kColumnar reads only the predicate's columns and can
/// skip the whole split when stats prove it empty; kIndexed additionally
/// carries a piggybacked zone-map index and seeks straight to qualifying
/// row ranges.
enum class ReplicaLayout : uint8_t { kRow = 0, kColumnar = 1, kIndexed = 2 };

const char* ReplicaLayoutToString(ReplicaLayout layout);

/// Scan-cost rank of a layout for a filtered scan (higher reads less):
/// kRow 0, kColumnar 1, kIndexed 2.
int LayoutQuality(ReplicaLayout layout);

/// \brief One stored copy of a partition.
struct Replica {
  int node_id = 0;
  int disk_id = 0;
  ReplicaLayout layout = ReplicaLayout::kRow;

  /// Location identity only; two copies of the same partition in
  /// different layouts are still the same placement slot.
  bool operator==(const Replica& other) const {
    return node_id == other.node_id && disk_id == other.disk_id;
  }
};

/// \brief One stored partition (input split) of a DFS file.
///
/// The paper stores each dataset evenly across the cluster's 40 disks with
/// no replication (Section V-B) — the default here. Files may also be
/// created with a replication factor > 1 (HDFS defaults to 3), in which
/// case a partition has several candidate read locations.
struct PartitionInfo {
  /// Index of the partition within its file (0-based).
  int index = 0;
  uint64_t size_bytes = 0;
  uint64_t num_records = 0;
  /// Primary location (always replicas.front()).
  int node_id = 0;
  int disk_id = 0;
  /// All locations, primary first. Empty means "primary only" (legacy
  /// construction); use locations() to read uniformly.
  std::vector<Replica> replicas;

  /// All candidate read locations (primary first), replica-aware.
  std::vector<Replica> locations() const {
    if (!replicas.empty()) return replicas;
    return {Replica{node_id, disk_id}};
  }
};

/// \brief Metadata for a DFS file: an ordered list of partitions.
struct FileInfo {
  std::string name;
  std::vector<PartitionInfo> partitions;

  uint64_t total_bytes() const;
  uint64_t total_records() const;
  int num_partitions() const { return static_cast<int>(partitions.size()); }
};

/// Tags every replica of `file` with a divergent layout, cycling
/// row/columnar/indexed: replica r of partition i carries layout
/// (i + r) mod 3. Deterministic, and with replication >= 3 every
/// partition has one copy of each layout (Dittrich et al.); with fewer
/// replicas the mix still varies per partition, so both the scheduler's
/// layout-vs-locality trade-off and the remote-read layout choice are
/// exercised.
void ApplyDivergentLayouts(FileInfo* file);

/// \brief Placement strategies for new files.
enum class Placement {
  /// Cycle partitions over every (node, disk) pair — the paper's balanced,
  /// unreplicated layout.
  kRoundRobin,
  /// All partitions on node 0 / disk 0 (for failure-mode tests).
  kSingleDisk,
};

/// \brief A simulated distributed filesystem namespace.
///
/// Tracks only metadata: partition sizes, record counts and home locations.
/// Actual record content for small datasets is materialized separately by
/// the TPC-H generator (tpch/) and executed by the LocalRuntime (exec/).
class FileSystem {
 public:
  /// \param num_nodes / disks_per_node  the placement grid.
  FileSystem(int num_nodes, int disks_per_node);

  /// Creates a file of `num_partitions` equal partitions.
  ///
  /// \param records_per_partition  logical record count per partition.
  /// \param bytes_per_record       average serialized record size.
  /// \param placement              primary-replica placement strategy.
  /// \param replication            copies per partition (>= 1); extra
  ///        replicas land on distinct nodes after the primary (HDFS-style).
  ///        The paper's datasets use 1 (no replication, Section V-B).
  Result<FileInfo> CreateFile(const std::string& name, int num_partitions,
                              uint64_t records_per_partition,
                              uint64_t bytes_per_record,
                              Placement placement = Placement::kRoundRobin,
                              int replication = 1);

  /// Registers a pre-built file (e.g. with heterogeneous partition sizes).
  Status AddFile(FileInfo file);

  Result<FileInfo> GetFile(const std::string& name) const;

  bool Exists(const std::string& name) const;

  Status DeleteFile(const std::string& name);

  std::vector<std::string> ListFiles() const;

  int num_nodes() const { return num_nodes_; }
  int disks_per_node() const { return disks_per_node_; }

  /// Attaches observability (nullable; counts files/partitions/bytes
  /// entering the namespace when set).
  void set_obs(obs::Scope* obs) { obs_ = obs; }

 private:
  /// Counts one registered file's placement into the dfs.* metrics.
  void CountPlacement(const FileInfo& file);

  int num_nodes_;
  int disks_per_node_;
  obs::Scope* obs_ = nullptr;
  std::map<std::string, FileInfo> files_;
};

}  // namespace dmr::dfs

#endif  // DMR_DFS_FILE_SYSTEM_H_
