#include "dfs/file_system.h"

#include "common/logging.h"

namespace dmr::dfs {

const char* ReplicaLayoutToString(ReplicaLayout layout) {
  switch (layout) {
    case ReplicaLayout::kRow:
      return "row";
    case ReplicaLayout::kColumnar:
      return "columnar";
    case ReplicaLayout::kIndexed:
      return "indexed";
  }
  return "unknown";
}

int LayoutQuality(ReplicaLayout layout) {
  return static_cast<int>(layout);
}

void ApplyDivergentLayouts(FileInfo* file) {
  DMR_CHECK(file != nullptr);
  for (auto& p : file->partitions) {
    for (size_t r = 0; r < p.replicas.size(); ++r) {
      p.replicas[r].layout =
          static_cast<ReplicaLayout>((p.index + static_cast<int>(r)) % 3);
    }
  }
}

uint64_t FileInfo::total_bytes() const {
  uint64_t total = 0;
  for (const auto& p : partitions) total += p.size_bytes;
  return total;
}

uint64_t FileInfo::total_records() const {
  uint64_t total = 0;
  for (const auto& p : partitions) total += p.num_records;
  return total;
}

FileSystem::FileSystem(int num_nodes, int disks_per_node)
    : num_nodes_(num_nodes), disks_per_node_(disks_per_node) {
  DMR_CHECK_GT(num_nodes, 0);
  DMR_CHECK_GT(disks_per_node, 0);
}

Result<FileInfo> FileSystem::CreateFile(const std::string& name,
                                        int num_partitions,
                                        uint64_t records_per_partition,
                                        uint64_t bytes_per_record,
                                        Placement placement,
                                        int replication) {
  if (files_.count(name)) {
    return Status::AlreadyExists("file '" + name + "' already exists");
  }
  if (num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be > 0");
  }
  if (replication < 1) {
    return Status::InvalidArgument("replication must be >= 1");
  }
  if (replication > num_nodes_) {
    return Status::InvalidArgument(
        "replication factor exceeds the number of nodes");
  }
  FileInfo file;
  file.name = name;
  file.partitions.reserve(num_partitions);
  int total_disks = num_nodes_ * disks_per_node_;
  for (int i = 0; i < num_partitions; ++i) {
    PartitionInfo p;
    p.index = i;
    p.num_records = records_per_partition;
    p.size_bytes = records_per_partition * bytes_per_record;
    switch (placement) {
      case Placement::kRoundRobin: {
        int slot = i % total_disks;
        p.node_id = slot / disks_per_node_;
        p.disk_id = slot % disks_per_node_;
        break;
      }
      case Placement::kSingleDisk:
        p.node_id = 0;
        p.disk_id = 0;
        break;
    }
    p.replicas.push_back({p.node_id, p.disk_id});
    // Extra replicas go to the next nodes (distinct from the primary and
    // each other), cycling the disk with the partition index.
    for (int r = 1; r < replication; ++r) {
      Replica replica;
      replica.node_id = (p.node_id + r) % num_nodes_;
      replica.disk_id = (p.disk_id + r) % disks_per_node_;
      p.replicas.push_back(replica);
    }
    file.partitions.push_back(p);
  }
  files_[name] = file;
  CountPlacement(file);
  return file;
}

void FileSystem::CountPlacement(const FileInfo& file) {
  if (obs_ == nullptr) return;
  const obs::StandardMetrics& m = obs_->m();
  obs_->Count(m.dfs_files_created);
  obs_->Count(m.dfs_partitions_placed, file.num_partitions());
  obs_->Count(m.dfs_bytes_placed,
              static_cast<int64_t>(file.total_bytes()));
}

Status FileSystem::AddFile(FileInfo file) {
  if (files_.count(file.name)) {
    return Status::AlreadyExists("file '" + file.name + "' already exists");
  }
  for (const auto& p : file.partitions) {
    if (p.node_id < 0 || p.node_id >= num_nodes_ || p.disk_id < 0 ||
        p.disk_id >= disks_per_node_) {
      return Status::InvalidArgument("partition " + std::to_string(p.index) +
                                     " placed outside the cluster grid");
    }
  }
  CountPlacement(file);
  files_[file.name] = std::move(file);
  return Status::OK();
}

Result<FileInfo> FileSystem::GetFile(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("file '" + name + "' does not exist");
  }
  return it->second;
}

bool FileSystem::Exists(const std::string& name) const {
  return files_.count(name) > 0;
}

Status FileSystem::DeleteFile(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("file '" + name + "' does not exist");
  }
  files_.erase(it);
  return Status::OK();
}

std::vector<std::string> FileSystem::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;
}

}  // namespace dmr::dfs
