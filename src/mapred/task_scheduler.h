#ifndef DMR_MAPRED_TASK_SCHEDULER_H_
#define DMR_MAPRED_TASK_SCHEDULER_H_

#include <string>
#include <vector>

#include "mapred/job.h"
#include "mapred/types.h"
#include "obs/scope.h"

namespace dmr::mapred {

class JobTracker;

/// \brief One map-task launch decision.
struct MapAssignment {
  Job* job = nullptr;
  InputSplit split;
  /// Whether the split's home node is the assigned node.
  bool local = false;
};

/// \brief Pluggable slot-assignment policy — the analogue of Hadoop's
/// TaskScheduler (Section V-F). Implementations: scheduler/fifo_scheduler.h
/// (Hadoop's default) and scheduler/fair_scheduler.h (the Facebook/Berkeley
/// Fair Scheduler with delay scheduling).
class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;

  virtual std::string name() const = 0;

  /// Called at a TaskTracker heartbeat: selects up to `free_slots` map tasks
  /// to launch on `node_id`. Implementations pop the chosen splits from the
  /// jobs' pending queues (Job::TakeLocalPending / TakeAnyPending).
  ///
  /// \param running_jobs  jobs in kMapping state, in submission order.
  /// \param now           current virtual time.
  virtual std::vector<MapAssignment> AssignMapTasks(
      const std::vector<Job*>& running_jobs, int node_id, int free_slots,
      double now) = 0;

  /// Attaches observability (nullable; implementations count decisions and
  /// delay-scheduling holds/skips when set).
  void set_obs(obs::Scope* obs) { obs_ = obs; }

 protected:
  obs::Scope* obs_ = nullptr;
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_TASK_SCHEDULER_H_
