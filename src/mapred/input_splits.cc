#include "mapred/input_splits.h"

namespace dmr::mapred {

Result<std::vector<InputSplit>> MakeInputSplits(
    const dfs::FileInfo& file,
    const std::vector<uint64_t>& matching_per_partition) {
  if (!matching_per_partition.empty() &&
      matching_per_partition.size() != file.partitions.size()) {
    return Status::InvalidArgument(
        "matching_per_partition size (" +
        std::to_string(matching_per_partition.size()) +
        ") does not match partition count (" +
        std::to_string(file.partitions.size()) + ")");
  }
  std::vector<InputSplit> splits;
  splits.reserve(file.partitions.size());
  for (size_t i = 0; i < file.partitions.size(); ++i) {
    const dfs::PartitionInfo& p = file.partitions[i];
    InputSplit split;
    split.file = file.name;
    split.index = p.index;
    split.size_bytes = p.size_bytes;
    split.num_records = p.num_records;
    split.num_matching =
        matching_per_partition.empty() ? 0 : matching_per_partition[i];
    split.node_id = p.node_id;
    split.disk_id = p.disk_id;
    for (const auto& replica : p.locations()) {
      split.locations.push_back(
          {replica.node_id, replica.disk_id, replica.layout});
    }
    splits.push_back(split);
  }
  return splits;
}

}  // namespace dmr::mapred
