#ifndef DMR_MAPRED_JOB_H_
#define DMR_MAPRED_JOB_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mapred/job_conf.h"
#include "mapred/types.h"

namespace dmr::mapred {

/// \brief Job lifecycle states.
enum class JobState {
  /// Accepting/processing map input.
  kMapping,
  /// Input finalized, all maps done, reduce queued or running.
  kReducing,
  kSucceeded,
  kKilled,
};

const char* JobStateToString(JobState state);

/// \brief Computes how many output records a map task over `split` emits.
///
/// This stands in for the user-defined map function in the simulator: for
/// predicate-based sampling it is min(k, split.num_matching); for a plain
/// select-project job it is split.num_matching.
using MapOutputModel = std::function<uint64_t(const InputSplit&)>;

/// \brief JobTracker-side state of one submitted job.
///
/// Owns the pending-split queues (indexed by home node for locality-aware
/// scheduling), the per-task accounting, and all counters that feed
/// JobProgress / JobStats. Task *execution* (resource requests, timing)
/// lives in the JobTracker.
class Job {
 public:
  Job(int id, JobConf conf, int splits_total, MapOutputModel output_model,
      double submit_time);

  int id() const { return id_; }
  const JobConf& conf() const { return conf_; }
  JobState state() const { return state_; }
  void set_state(JobState s) { state_ = s; }
  double submit_time() const { return submit_time_; }

  // --- input management -----------------------------------------------

  /// Appends splits to the pending queue.
  void AddSplits(const std::vector<InputSplit>& splits);

  /// Marks that no further input will be added (paper: "end of input").
  void FinalizeInput() { input_finalized_ = true; }
  bool input_finalized() const { return input_finalized_; }

  bool HasPendingSplits() const { return !pending_splits_.empty(); }
  int pending_count() const {
    return static_cast<int>(pending_splits_.size());
  }

  /// True if a pending split's home is `node_id`.
  bool HasLocalPending(int node_id) const;

  /// Pops a pending split local to `node_id`, if any.
  std::optional<InputSplit> TakeLocalPending(int node_id);

  /// Pops any pending split (preferring the longest per-node backlog so
  /// remote work drains hot spots first).
  std::optional<InputSplit> TakeAnyPending();

  /// Max replica layout quality (dfs::LayoutQuality) over live pending
  /// splits — restricted to replicas on `node_id` when node_id >= 0; -1
  /// when no pending split qualifies. Used by the layout-aware fair
  /// scheduler (DESIGN.md §16).
  int BestPendingLayoutQuality(int node_id) const;

  /// Pops the pending split whose replica on `node_id` (anywhere, when
  /// node_id < 0) has the highest layout quality; ties keep insertion
  /// order, so with uniform layouts this degenerates to FIFO order.
  std::optional<InputSplit> TakeBestLayoutPending(int node_id);

  // --- task accounting --------------------------------------------------

  /// Puts a failed attempt's split back on the pending queue. Unlike
  /// AddSplits this is allowed after FinalizeInput (retries are not new
  /// input) and does not bump splits_added.
  void RequeueSplit(const InputSplit& split);

  /// Records a map task launch; returns the task sequence number.
  int OnMapLaunched(const InputSplit& split, int node_id, bool local);

  /// Records a failed map attempt (the split must be requeued separately).
  void OnMapFailed(const InputSplit& split);

  /// Records a map task completion and accumulates counters.
  void OnMapCompleted(const InputSplit& split, uint64_t output_records);

  /// Applies the job's map-output model to a split (stands in for running
  /// the user map function).
  uint64_t ComputeMapOutput(const InputSplit& split) const {
    return output_model_(split);
  }

  /// All maps done and input finalized => ready for the reduce phase.
  bool ReadyForReduce() const;

  // --- snapshots ---------------------------------------------------------

  JobProgress GetProgress(double now) const;

  /// Hadoop-style counter snapshot of the job's current accounting.
  Counters CurrentCounters() const;

  /// Final stats; `finish_time` is stamped by the tracker.
  JobStats GetStats() const;
  void set_finish_time(double t) { finish_time_ = t; }

  int maps_running() const { return maps_running_; }
  int maps_completed() const { return maps_completed_; }
  int failed_maps() const { return failed_maps_; }

  /// Records the duration of a completed map attempt (feeds the
  /// speculative-execution slowdown heuristic).
  void RecordMapDuration(double seconds);
  /// Mean duration of completed map attempts (0 before the first).
  double MeanMapDuration() const;

  /// Counts a speculative (backup) attempt launch.
  void OnSpeculativeLaunched() { ++speculative_maps_; }
  int speculative_maps() const { return speculative_maps_; }
  int splits_added() const { return splits_added_; }
  uint64_t output_records() const { return output_records_; }
  void set_result_records(uint64_t n) { result_records_ = n; }

  // --- scheduler scratch state (fair scheduler delay scheduling) ---------

  bool delay_waiting = false;
  double delay_wait_start = 0.0;

  // --- tracker scratch state (observability) -----------------------------

  /// Virtual time the reduce task launched (feeds its trace span).
  double reduce_launch_time = 0.0;

 private:
  int id_;
  JobConf conf_;
  JobState state_ = JobState::kMapping;
  double submit_time_;
  double finish_time_ = 0.0;
  int splits_total_;
  MapOutputModel output_model_;

  /// Inserts a split into the pending store, indexing every replica node.
  void IndexPending(const InputSplit& split);
  /// Pops a pending entry by id (must exist) and returns its split.
  InputSplit TakePendingById(int id);
  /// First live pending id on `node_id`'s queue (pruning stale ids), or -1.
  int FrontLiveId(int node_id) const;

  bool input_finalized_ = false;
  /// Pending splits by insertion id; per-node queues hold ids and may
  /// contain stale entries (splits already taken via another replica),
  /// which are pruned lazily.
  std::map<int, InputSplit> pending_splits_;
  mutable std::map<int, std::deque<int>> pending_ids_by_node_;
  int next_pending_id_ = 0;

  int splits_added_ = 0;
  int maps_running_ = 0;
  int maps_completed_ = 0;
  int next_task_id_ = 0;
  int local_maps_ = 0;
  int remote_maps_ = 0;
  int failed_maps_ = 0;
  int speculative_maps_ = 0;
  double map_duration_sum_ = 0.0;
  int map_duration_count_ = 0;
  uint64_t records_added_ = 0;
  uint64_t records_processed_ = 0;
  uint64_t output_records_ = 0;
  uint64_t result_records_ = 0;
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_JOB_H_
