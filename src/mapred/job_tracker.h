#ifndef DMR_MAPRED_JOB_TRACKER_H_
#define DMR_MAPRED_JOB_TRACKER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "common/result.h"
#include "mapred/job.h"
#include "mapred/job_history.h"
#include "mapred/task_scheduler.h"
#include "mapred/types.h"
#include "obs/scope.h"
#include "obs/timeline.h"
#include "sim/simulation.h"

namespace dmr::mapred {

/// \brief The server-side daemon that manages job lifecycles — the analogue
/// of Hadoop's JobTracker.
///
/// Per the paper's design (Section IV), the JobTracker is agnostic of Input
/// Providers and policies: it only exposes AddSplits / FinalizeInput, which
/// the client-side JobClient drives. TaskTracker heartbeats are simulated
/// per node at the configured interval; at each heartbeat the pluggable
/// TaskScheduler fills free map slots and the tracker launches queued
/// reduce tasks.
class JobTracker {
 public:
  using CompletionCallback = std::function<void(const JobStats&)>;

  /// \param scheduler  not owned; must outlive the tracker.
  /// \param obs        nullable observability scope (not owned). When null,
  ///                   the tracker records nothing (zero-overhead-when-off).
  JobTracker(cluster::Cluster* cluster, TaskScheduler* scheduler,
             obs::Scope* obs = nullptr);

  /// Begins the per-node heartbeat cycle (staggered across nodes).
  void Start();

  /// Submits a job whose whole input is known up front (ordinary Hadoop
  /// job): all splits are added and input is finalized immediately.
  Result<int> SubmitStaticJob(JobConf conf, std::vector<InputSplit> splits,
                              MapOutputModel output_model,
                              CompletionCallback on_complete);

  /// Submits a dynamic job with no input yet; the JobClient feeds splits
  /// via AddSplits and eventually calls FinalizeInput.
  ///
  /// \param splits_total  size of the job's complete input (for progress).
  Result<int> SubmitDynamicJob(JobConf conf, int splits_total,
                               MapOutputModel output_model,
                               CompletionCallback on_complete);

  /// Appends input partitions to a job ("input available").
  Status AddSplits(int job_id, const std::vector<InputSplit>& splits);

  /// Declares a job's input complete ("end of input"); once in-flight maps
  /// finish, the reduce phase begins.
  Status FinalizeInput(int job_id);

  Result<JobProgress> GetJobProgress(int job_id) const;

  /// True once the job has fully completed.
  Result<bool> IsJobComplete(int job_id) const;

  /// Current cluster-load summary (what the JobClient forwards to Input
  /// Providers).
  ClusterStatus GetClusterStatus() const;

  cluster::Cluster* cluster() { return cluster_; }
  sim::Simulation* simulation() { return sim_; }

  /// Stats of all completed jobs, in completion order.
  const std::vector<JobStats>& completed_jobs() const {
    return completed_jobs_;
  }

  int64_t total_local_maps() const { return total_local_maps_; }
  int64_t total_remote_maps() const { return total_remote_maps_; }

  /// Locality as % of launched map tasks reading from their home node.
  double LocalityPercent() const;

  /// Speculative (backup) map attempts launched cluster-wide.
  int64_t total_speculative_maps() const { return total_speculative_maps_; }

  /// Map attempts whose stats hint pruned them to a stats-read
  /// (split.scan_fraction == 0; adaptive-layout cost model, DESIGN.md §16).
  int64_t total_pruned_splits() const { return total_pruned_splits_; }

  /// Append-only lifecycle event log (the JobHistory analogue).
  const JobHistory& history() const { return history_; }

  /// The attached observability scope, or null (shared with the JobClient
  /// for provider-decision instrumentation).
  obs::Scope* obs() const { return obs_; }

  /// Jobs submitted and not yet completed (the timeline's
  /// "mapred.active_jobs" probe).
  int active_jobs() const { return active_jobs_; }

  /// Active jobs for one tenant; 0 for unknown users. Backs the
  /// per-tenant "mapred.inflight_jobs.<user>" timeline probes.
  int ActiveJobsForUser(const std::string& user) const;

 private:
  /// One running map attempt (original or speculative backup). Attempts are
  /// killable: their outstanding resource requests are cancelled and the
  /// slot freed when a sibling attempt wins.
  struct MapAttempt {
    Job* job = nullptr;
    InputSplit split;
    int node_id = 0;
    bool local = false;
    bool backup = false;
    bool finished = false;
    /// Map slot index on node_id (trace lane), from Node::AcquireMapSlot.
    int slot = 0;
    double launch_time = 0.0;
    sim::EventHandle startup_event;
    std::vector<std::pair<sim::PsResource*, sim::PsResource::RequestId>>
        requests;
  };
  using AttemptPtr = std::shared_ptr<MapAttempt>;
  /// Key of a running split: (job id, split index).
  using SplitKey = std::pair<int, int>;

  void Heartbeat(int node_id);
  void MaybeLaunchBackups(int node_id);
  void LaunchMap(Job* job, const InputSplit& split, int node_id, bool local,
                 bool backup);
  void LaunchReduce(Job* job, int node_id);
  void OnAttemptDone(const AttemptPtr& attempt, bool failed);
  void KillAttempt(const AttemptPtr& attempt);
  void OnReduceComplete(Job* job, int node_id);
  void CheckReduceReady(Job* job);
  /// Emits the trace span of a finished (completed/failed/killed) attempt.
  void TraceAttemptSpan(const MapAttempt& attempt, const char* outcome);
  /// Reports a finished attempt to the slot-time ledger and the event
  /// graph. Must run before the node releases the attempt's map slot.
  void RecordAttemptEnd(const MapAttempt& attempt, const char* outcome);
  /// Re-derives the cluster-wide free-slot demand state (splits pending /
  /// starved on the provider / idle) for the ledger. Cheap no-op dedupe in
  /// the ledger; call after any event that can change demand.
  void RecordDemandState();
  /// Records the first instant `job`'s cumulative map output covered its
  /// LIMIT-k sample (the boundary between useful and wasted slot time).
  void MaybeRecordSatisfiable(Job* job);
  void PruneMappingJobs();
  Result<Job*> FindJob(int job_id) const;
  int NextJobId() { return next_job_id_++; }

  cluster::Cluster* cluster_;
  sim::Simulation* sim_;
  TaskScheduler* scheduler_;
  obs::Scope* obs_;
  /// Cached from obs_ at construction (null when no timeline cell is
  /// attached) so hot-path sites pay one pointer test, not a Scope walk.
  obs::Timeline* tl_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::Timeline::WindowedId tl_job_response_;
  obs::Timeline::WindowedId tl_task_wait_;
  bool started_ = false;
  Rng fault_rng_;

  std::map<int, std::unique_ptr<Job>> jobs_;
  std::vector<Job*> mapping_jobs_;           // submission order
  std::deque<Job*> reduce_ready_;            // FIFO reduce launch queue
  std::map<int, CompletionCallback> callbacks_;
  std::vector<JobStats> completed_jobs_;
  std::map<SplitKey, std::vector<AttemptPtr>> running_splits_;
  int next_job_id_ = 1;
  int active_jobs_ = 0;
  /// Per-tenant inflight counts; only maintained when a timeline is
  /// attached (node pointers stay stable, so probe lambdas may capture
  /// the mapped int directly).
  std::map<std::string, int> active_by_user_;
  int64_t total_local_maps_ = 0;
  int64_t total_remote_maps_ = 0;
  int64_t total_speculative_maps_ = 0;
  int64_t total_pruned_splits_ = 0;
  JobHistory history_;
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_JOB_TRACKER_H_
