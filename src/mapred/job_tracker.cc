#include "mapred/job_tracker.h"

#include <algorithm>
#include <memory>

#include "common/host_clock.h"
#include "common/logging.h"
#include "obs/critical_path.h"
#include "obs/ledger.h"
#include "prof/prof.h"
#include "sim/arena.h"

namespace dmr::mapred {

namespace {

/// Async-span id of a split ("split" category): job id in the high word so
/// two jobs' split 0 never correlate.
uint64_t SplitSpanId(int job_id, int split_index) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(job_id)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(split_index));
}

/// Adaptive-layout cost model (DESIGN.md §16). `scan_fraction` is the
/// split's stats hint: the fraction of its rows a stats-aware reader must
/// physically scan for the job's predicate (1.0 = no stats). A row replica
/// cannot seek inside the file, so any non-empty fraction still scans the
/// whole split; a columnar replica reads only the predicate's columns; an
/// indexed replica seeks straight to the qualifying ranges. Whatever gets
/// skipped, the attempt still pays the stats-read floor. The paper's
/// default — row layout, no stats — leaves the demands untouched, so
/// every pre-existing experiment is bit-identical.
void ApplyLayoutCost(const cluster::ClusterConfig& config,
                     dfs::ReplicaLayout layout, double scan_fraction,
                     double* cpu_demand, double* read_bytes) {
  double frac = std::clamp(scan_fraction, 0.0, 1.0);
  if (layout == dfs::ReplicaLayout::kRow && frac >= 1.0) return;
  double cpu_frac = 1.0;
  double byte_frac = 1.0;
  switch (layout) {
    case dfs::ReplicaLayout::kRow:
      cpu_frac = byte_frac = frac > 0.0 ? 1.0 : 0.0;
      break;
    case dfs::ReplicaLayout::kColumnar:
      cpu_frac = frac > 0.0 ? 1.0 : 0.0;
      byte_frac = frac > 0.0 ? config.columnar_byte_factor : 0.0;
      break;
    case dfs::ReplicaLayout::kIndexed:
      cpu_frac = frac;
      byte_frac = config.columnar_byte_factor * frac;
      break;
  }
  *cpu_demand = std::max(*cpu_demand * cpu_frac,
                         config.stats_read_records *
                             config.cpu_cost_per_record);
  *read_bytes = std::max(*read_bytes * byte_frac, config.stats_read_bytes);
}

}  // namespace

JobTracker::JobTracker(cluster::Cluster* cluster, TaskScheduler* scheduler,
                       obs::Scope* obs)
    : cluster_(cluster),
      sim_(cluster->simulation()),
      scheduler_(scheduler),
      obs_(obs),
      fault_rng_(cluster->config().fault_seed) {
  if (obs_ != nullptr) {
    tl_ = obs_->timeline();
    flight_ = obs_->flight();
    if (tl_ != nullptr) {
      tl_job_response_ = tl_->AddWindowed("mapred.job_response", "sim_s");
      tl_task_wait_ = tl_->AddWindowed("mapred.task_wait", "sim_s");
      tl_->AddProbe("mapred.pruned_splits", "splits",
                    obs::Timeline::SeriesKind::kCounter, [this] {
                      return static_cast<double>(total_pruned_splits_);
                    });
    }
  }
}

int JobTracker::ActiveJobsForUser(const std::string& user) const {
  auto it = active_by_user_.find(user);
  return it == active_by_user_.end() ? 0 : it->second;
}

void JobTracker::Start() {
  DMR_CHECK(!started_) << "JobTracker::Start called twice";
  started_ = true;
  double interval = cluster_->config().heartbeat_interval;
  int n = cluster_->num_nodes();
  for (int i = 0; i < n; ++i) {
    double offset = interval * (static_cast<double>(i) + 1.0) /
                    static_cast<double>(n);
    sim_->Schedule(offset, sim::EventClass::kScheduling,
                   [this, i] { Heartbeat(i); });
  }
}

Result<int> JobTracker::SubmitStaticJob(JobConf conf,
                                        std::vector<InputSplit> splits,
                                        MapOutputModel output_model,
                                        CompletionCallback on_complete) {
  int splits_total = static_cast<int>(splits.size());
  DMR_ASSIGN_OR_RETURN(
      int id, SubmitDynamicJob(std::move(conf), splits_total,
                               std::move(output_model),
                               std::move(on_complete)));
  DMR_RETURN_NOT_OK(AddSplits(id, splits));
  DMR_RETURN_NOT_OK(FinalizeInput(id));
  return id;
}

Result<int> JobTracker::SubmitDynamicJob(JobConf conf, int splits_total,
                                         MapOutputModel output_model,
                                         CompletionCallback on_complete) {
  if (!started_) return Status::FailedPrecondition("tracker not started");
  if (splits_total < 0) {
    return Status::InvalidArgument("splits_total must be >= 0");
  }
  if (!output_model) {
    return Status::InvalidArgument("output_model must be set");
  }
  int id = NextJobId();
  auto job = std::make_unique<Job>(id, std::move(conf), splits_total,
                                   std::move(output_model), sim_->Now());
  mapping_jobs_.push_back(job.get());
  jobs_[id] = std::move(job);
  callbacks_[id] = std::move(on_complete);
  ++active_jobs_;
  history_.Record(sim_->Now(), id, JobEventKind::kSubmitted);
  DMR_LOG(Info) << "job " << id << " submitted (user "
                << jobs_[id]->conf().user() << ", " << splits_total
                << " total splits) at t=" << sim_->Now();
  if (tl_ != nullptr) {
    // Per-tenant inflight series: first submission registers the probe
    // (AddProbe dedupes); the mapped count node is address-stable.
    const std::string& user = jobs_[id]->conf().user();
    int* count = &active_by_user_[user];
    ++*count;
    tl_->AddProbe("mapred.inflight_jobs." + user, "jobs",
                  obs::Timeline::SeriesKind::kGauge,
                  [count] { return static_cast<double>(*count); });
  }
  if (obs_ != nullptr) {
    obs_->Count(obs_->m().jobs_submitted);
    if (obs::TraceStream* trace = obs_->trace()) {
      // The client/provider track is the last pid of the cluster's stream.
      obs::TraceArgs args;
      args.Set("user", jobs_[id]->conf().user());
      trace->AsyncBegin(sim_->Now(), static_cast<uint64_t>(id),
                        trace->num_pids() - 1,
                        "job " + std::to_string(id), "job", args);
    }
    if (obs::EventGraph* graph = obs_->graph()) {
      graph->JobSubmitted(id, sim_->Now());
    }
    if (obs::Ledger* ledger = obs_->ledger()) ledger->ClearQuiescent();
    RecordDemandState();
  }
  return id;
}

Status JobTracker::AddSplits(int job_id,
                             const std::vector<InputSplit>& splits) {
  DMR_ASSIGN_OR_RETURN(Job * job, FindJob(job_id));
  if (job->input_finalized()) {
    return Status::FailedPrecondition("job " + std::to_string(job_id) +
                                      ": input already finalized");
  }
  if (obs_ == nullptr) {
    job->AddSplits(splits);
  } else {
    // Stamp the queue time so the task-wait histogram can be fed at launch;
    // the copy happens only with observability attached.
    double now = sim_->Now();
    std::vector<InputSplit> stamped = splits;
    for (InputSplit& split : stamped) split.queued_time = now;
    job->AddSplits(stamped);
    obs_->Count(obs_->m().splits_added,
                static_cast<int64_t>(stamped.size()));
    if (obs::TraceStream* trace = obs_->trace()) {
      for (const InputSplit& split : stamped) {
        trace->AsyncBegin(now, SplitSpanId(job_id, split.index),
                          split.node_id,
                          "split " + std::to_string(split.index), "split");
      }
    }
    if (obs::EventGraph* graph = obs_->graph()) {
      for (const InputSplit& split : stamped) {
        graph->SplitAdded(job_id, split.index, now);
      }
    }
    RecordDemandState();
  }
  history_.Record(sim_->Now(), job_id, JobEventKind::kSplitsAdded,
                  static_cast<int>(splits.size()));
  return Status::OK();
}

Status JobTracker::FinalizeInput(int job_id) {
  DMR_ASSIGN_OR_RETURN(Job * job, FindJob(job_id));
  if (job->input_finalized()) return Status::OK();
  job->FinalizeInput();
  history_.Record(sim_->Now(), job_id, JobEventKind::kInputFinalized);
  if (obs_ != nullptr) {
    if (obs::EventGraph* graph = obs_->graph()) {
      graph->InputFinalized(job_id, sim_->Now());
    }
  }
  CheckReduceReady(job);
  RecordDemandState();
  return Status::OK();
}

Result<JobProgress> JobTracker::GetJobProgress(int job_id) const {
  DMR_ASSIGN_OR_RETURN(Job * job, FindJob(job_id));
  return job->GetProgress(sim_->Now());
}

Result<bool> JobTracker::IsJobComplete(int job_id) const {
  DMR_ASSIGN_OR_RETURN(Job * job, FindJob(job_id));
  return job->state() == JobState::kSucceeded ||
         job->state() == JobState::kKilled;
}

ClusterStatus JobTracker::GetClusterStatus() const {
  ClusterStatus status;
  status.total_map_slots = cluster_->total_map_slots();
  status.occupied_map_slots = cluster_->used_map_slots();
  status.running_jobs = active_jobs_;
  return status;
}

double JobTracker::LocalityPercent() const {
  int64_t total = total_local_maps_ + total_remote_maps_;
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(total_local_maps_) /
         static_cast<double>(total);
}

Result<Job*> JobTracker::FindJob(int job_id) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  return it->second.get();
}

void JobTracker::PruneMappingJobs() {
  mapping_jobs_.erase(
      std::remove_if(mapping_jobs_.begin(), mapping_jobs_.end(),
                     [](Job* j) { return j->state() != JobState::kMapping; }),
      mapping_jobs_.end());
}

void JobTracker::Heartbeat(int node_id) {
  static const prof::PhaseId kHeartbeatPhase =
      prof::RegisterPhase("mapred", "heartbeat");
  prof::ScopedTimer prof_frame(kHeartbeatPhase);
  cluster::Node* node = cluster_->node(node_id);
  cluster_->state().RecordHeartbeat(node_id, sim_->Now());

  // Launch queued reduce tasks first (they are few and cheap).
  while (!reduce_ready_.empty() && node->free_reduce_slots() > 0) {
    Job* job = reduce_ready_.front();
    reduce_ready_.pop_front();
    LaunchReduce(job, node_id);
  }

  // Fill free map slots via the pluggable scheduler.
  PruneMappingJobs();
  if (obs_ != nullptr) obs_->Count(obs_->m().heartbeats);
  if (node->free_map_slots() > 0 && !mapping_jobs_.empty()) {
    // Heartbeat-to-assign latency is *host* wall time of the scheduling
    // decision (virtual time does not advance inside the callback). Host
    // reads go through the HostClock seam so frozen-clock runs stay
    // byte-identical.
    double t0 = 0.0;
    if (obs_ != nullptr) t0 = HostClock::NowMicros();
    static const prof::PhaseId kAssignPhase =
        prof::RegisterPhase("mapred", "assign_maps");
    std::vector<MapAssignment> assignments;
    {
      prof::ScopedTimer assign_frame(kAssignPhase);
      assignments = scheduler_->AssignMapTasks(
          mapping_jobs_, node_id, node->free_map_slots(), sim_->Now());
    }
    if (obs_ != nullptr) {
      obs_->Observe(obs_->m().heartbeat_assign, HostClock::ElapsedMicros(t0));
    }
    DMR_CHECK_LE(static_cast<int>(assignments.size()),
                 node->free_map_slots());
    for (auto& a : assignments) {
      LaunchMap(a.job, a.split, node_id, a.local, /*backup=*/false);
    }
  }

  if (cluster_->config().speculative_execution &&
      node->free_map_slots() > 0) {
    MaybeLaunchBackups(node_id);
  }

  RecordDemandState();
  sim_->Schedule(cluster_->config().heartbeat_interval,
                 sim::EventClass::kScheduling,
                 [this, node_id] { Heartbeat(node_id); });
}

void JobTracker::MaybeLaunchBackups(int node_id) {
  const auto& config = cluster_->config();
  double now = sim_->Now();
  // At most one backup per heartbeat (mirroring Hadoop's cautious pace):
  // pick the longest-overdue single-attempt split of the oldest job that
  // qualifies.
  AttemptPtr victim;
  double worst_overrun = 0.0;
  for (Job* job : mapping_jobs_) {
    if (job->HasPendingSplits()) continue;   // real work first
    if (job->maps_completed() == 0) continue;  // no duration baseline yet
    double mean = job->MeanMapDuration();
    double threshold = std::max(config.speculative_min_runtime,
                                config.speculative_slowdown_threshold * mean);
    for (auto& [key, attempts] : running_splits_) {
      if (key.first != job->id() || attempts.size() != 1) continue;
      double elapsed = now - attempts.front()->launch_time;
      if (elapsed > threshold && elapsed > worst_overrun) {
        worst_overrun = elapsed;
        victim = attempts.front();
      }
    }
  }
  if (!victim) return;
  ++total_speculative_maps_;
  victim->job->OnSpeculativeLaunched();
  LaunchMap(victim->job, victim->split, node_id,
            victim->split.IsLocalTo(node_id), /*backup=*/true);
}

void JobTracker::LaunchMap(Job* job, const InputSplit& split, int node_id,
                           bool local, bool backup) {
  cluster::Node* node = cluster_->node(node_id);
  int slot = node->AcquireMapSlot();
  // Backups do not change the job's split-level accounting — the split is
  // already counted as running by its original attempt.
  if (!backup) job->OnMapLaunched(split, node_id, local);
  if (obs_ != nullptr) {
    obs_->Count(backup ? obs_->m().backups_launched
                       : obs_->m().maps_launched);
    if (!backup) {
      const double wait = sim_->Now() - split.queued_time;
      obs_->Observe(obs_->m().task_wait, wait);
      if (tl_ != nullptr) tl_->Observe(tl_task_wait_, wait);
      if (flight_ != nullptr) {
        flight_->Append(sim_->Now(), obs::FlightEventKind::kSchedule,
                        job->id(), node_id, split.index, wait);
      }
    } else if (flight_ != nullptr) {
      flight_->Append(sim_->Now(), obs::FlightEventKind::kBackup, job->id(),
                      node_id, split.index, 0.0);
    }
  }
  if (obs_ != nullptr) {
    if (obs::EventGraph* graph = obs_->graph()) {
      graph->AttemptLaunched(job->id(), split.index, sim_->Now(), node_id,
                             slot, backup);
    }
  }
  if (local) {
    ++total_local_maps_;
  } else {
    ++total_remote_maps_;
  }
  cluster_->state().RecordMapLaunch(node_id, local);

  const auto& config = cluster_->config();
  double cpu_demand =
      static_cast<double>(split.num_records) * config.cpu_cost_per_record;
  double read_bytes = static_cast<double>(split.size_bytes);

  // Read from the replica on this node when there is one, else from the
  // best-layout remote copy over the network; that replica's layout and
  // the split's stats hint set the attempt's effective cost.
  const SplitLocation source = split.ReadLocationFor(node_id);
  ApplyLayoutCost(config, source.layout, split.scan_fraction, &cpu_demand,
                  &read_bytes);
  if (split.scan_fraction <= 0.0) {
    ++total_pruned_splits_;
    if (obs_ != nullptr) obs_->Count(obs_->m().splits_pruned);
  }

  // Fault injection: a straggler attempt demands proportionally more of
  // every resource; a failing attempt does its work and then reports
  // failure, whereupon the split is requeued for another attempt.
  if (config.straggler_prob > 0 &&
      fault_rng_.NextBernoulli(config.straggler_prob)) {
    cpu_demand *= config.straggler_slowdown;
    read_bytes *= config.straggler_slowdown;
  }
  bool will_fail = config.map_failure_prob > 0 &&
                   fault_rng_.NextBernoulli(config.map_failure_prob);

  // Task-attempt records churn once per split attempt; draw them (control
  // block included) from the simulation's arena instead of global malloc.
  // Cross-shard OK: the tracker runs the serial engine, where one thread
  // owns every shard (and hence the shard-0 arena).
  DMR_CROSS_SHARD_OK auto attempt = std::allocate_shared<MapAttempt>(
      sim::ArenaAllocator<MapAttempt>(sim_->arena()));
  attempt->job = job;
  attempt->split = split;
  attempt->node_id = node_id;
  attempt->local = local;
  attempt->backup = backup;
  attempt->slot = slot;
  attempt->launch_time = sim_->Now();
  running_splits_[{job->id(), split.index}].push_back(attempt);
  history_.Record(sim_->Now(), job->id(),
                  backup ? JobEventKind::kBackupLaunched
                         : JobEventKind::kMapLaunched,
                  split.index, node_id);

  // The task holds its slot through startup, then reads its partition while
  // applying the map function. Disk (and network, when remote) and CPU are
  // consumed concurrently; the task finishes when all demands are met.
  attempt->startup_event = sim_->Schedule(
      config.task_startup_seconds, sim::EventClass::kTaskLifecycle,
      [this, attempt, cpu_demand, read_bytes, will_fail, source] {
        // Cross-shard OK: serial engine, see the attempt allocation above.
        DMR_CROSS_SHARD_OK auto remaining = std::allocate_shared<int>(
            sim::ArenaAllocator<int>(sim_->arena()),
            attempt->local ? 2 : 3);
        auto on_part_done = [this, attempt, remaining, will_fail] {
          if (--(*remaining) != 0) return;
          OnAttemptDone(attempt, will_fail);
        };
        sim::PsResource* disk =
            cluster_->node(source.node_id)->disk(source.disk_id);
        attempt->requests.emplace_back(disk,
                                       disk->Submit(read_bytes, on_part_done));
        if (!attempt->local) {
          sim::PsResource* net = cluster_->network();
          attempt->requests.emplace_back(
              net, net->Submit(read_bytes, on_part_done));
        }
        sim::PsResource* cpu = cluster_->node(attempt->node_id)->cpu();
        attempt->requests.emplace_back(cpu,
                                       cpu->Submit(cpu_demand, on_part_done));
      });
}

void JobTracker::RecordAttemptEnd(const MapAttempt& attempt,
                                  const char* outcome) {
  if (obs_ == nullptr) return;
  if (obs::Ledger* ledger = obs_->ledger()) {
    obs::Ledger::AttemptKind kind =
        outcome[0] == 'o' ? obs::Ledger::AttemptKind::kCompleted
        : outcome[0] == 'f' ? obs::Ledger::AttemptKind::kFailed
                            : obs::Ledger::AttemptKind::kKilled;
    ledger->OnAttemptOutcome(attempt.node_id, attempt.slot,
                             attempt.job->id(), kind);
  }
  if (obs::EventGraph* graph = obs_->graph()) {
    graph->AttemptDone(attempt.job->id(), attempt.split.index, sim_->Now(),
                       attempt.node_id, attempt.slot, outcome);
  }
}

void JobTracker::RecordDemandState() {
  if (obs_ == nullptr) return;
  obs::Ledger* ledger = obs_->ledger();
  if (ledger == nullptr) return;
  // A free slot right now is queueing delay if some mapping job has a
  // runnable pending split, provider-wait if the only open demand is jobs
  // whose input has not arrived yet, and idle otherwise.
  bool pending = false;
  bool provider_starved = false;
  for (const Job* job : mapping_jobs_) {
    if (job->state() != JobState::kMapping) continue;
    if (job->HasPendingSplits()) {
      pending = true;
      break;
    }
    if (!job->input_finalized()) provider_starved = true;
  }
  ledger->OnFreeState(pending ? obs::Ledger::FreeState::kQueue
                      : provider_starved
                          ? obs::Ledger::FreeState::kProviderWait
                          : obs::Ledger::FreeState::kIdle,
                      sim_->Now());
}

void JobTracker::MaybeRecordSatisfiable(Job* job) {
  if (obs_ == nullptr) return;
  uint64_t k = job->conf().sample_size();
  if (k == 0 || job->output_records() < k) return;
  if (obs::Ledger* ledger = obs_->ledger()) {
    ledger->OnSampleSatisfiable(job->id(), sim_->Now());
  }
  if (obs::EventGraph* graph = obs_->graph()) {
    graph->SampleSatisfiable(job->id(), sim_->Now());
  }
}

void JobTracker::TraceAttemptSpan(const MapAttempt& attempt,
                                  const char* outcome) {
  obs::TraceStream* trace = obs_->trace();
  if (trace == nullptr) return;
  obs::TraceArgs args;
  args.Set("job", attempt.job->id());
  args.Set("split", attempt.split.index);
  args.Set("local", attempt.local);
  args.Set("backup", attempt.backup);
  args.Set("outcome", outcome);
  trace->Complete(attempt.launch_time, sim_->Now() - attempt.launch_time,
                  attempt.node_id, attempt.slot,
                  "map j" + std::to_string(attempt.job->id()) + "/s" +
                      std::to_string(attempt.split.index),
                  "map", args);
}

void JobTracker::KillAttempt(const AttemptPtr& attempt) {
  DMR_CHECK(!attempt->finished);
  attempt->finished = true;
  attempt->startup_event.Cancel();
  for (auto& [resource, request_id] : attempt->requests) {
    resource->CancelRequest(request_id);
  }
  RecordAttemptEnd(*attempt, "killed");
  cluster_->node(attempt->node_id)->ReleaseMapSlot(attempt->slot);
  history_.Record(sim_->Now(), attempt->job->id(),
                  JobEventKind::kAttemptKilled, attempt->split.index,
                  attempt->node_id);
  if (obs_ != nullptr) {
    obs_->Count(obs_->m().attempts_killed);
    TraceAttemptSpan(*attempt, "killed");
    if (flight_ != nullptr) {
      flight_->Append(sim_->Now(), obs::FlightEventKind::kPreempt,
                      attempt->job->id(), attempt->node_id,
                      attempt->split.index,
                      sim_->Now() - attempt->launch_time);
    }
  }
}

void JobTracker::OnAttemptDone(const AttemptPtr& attempt, bool failed) {
  if (attempt->finished) return;  // lost a race with a sibling's kill
  attempt->finished = true;
  RecordAttemptEnd(*attempt, failed ? "failed" : "ok");
  cluster_->node(attempt->node_id)->ReleaseMapSlot(attempt->slot);
  Job* job = attempt->job;
  if (obs_ != nullptr) {
    obs_->Count(failed ? obs_->m().maps_failed : obs_->m().maps_completed);
    obs_->Observe(obs_->m().task_run, sim_->Now() - attempt->launch_time);
    TraceAttemptSpan(*attempt, failed ? "failed" : "ok");
  }

  SplitKey key{job->id(), attempt->split.index};
  auto group_it = running_splits_.find(key);
  DMR_CHECK(group_it != running_splits_.end());
  auto& attempts = group_it->second;
  attempts.erase(std::remove(attempts.begin(), attempts.end(), attempt),
                 attempts.end());

  history_.Record(sim_->Now(), job->id(),
                  failed ? JobEventKind::kMapFailed
                         : JobEventKind::kMapCompleted,
                  attempt->split.index, attempt->node_id);
  if (failed) {
    // A sibling backup may still succeed; only when every attempt has
    // failed does the split go back on the pending queue.
    if (attempts.empty()) {
      running_splits_.erase(group_it);
      job->OnMapFailed(attempt->split);
      job->RequeueSplit(attempt->split);
    }
    RecordDemandState();
    return;
  }

  // First successful attempt wins; kill the rest.
  for (auto& sibling : attempts) KillAttempt(sibling);
  running_splits_.erase(group_it);
  if (obs_ != nullptr && obs_->trace() != nullptr) {
    obs_->trace()->AsyncEnd(sim_->Now(),
                            SplitSpanId(job->id(), attempt->split.index),
                            attempt->split.node_id,
                            "split " + std::to_string(attempt->split.index),
                            "split");
  }
  job->RecordMapDuration(sim_->Now() - attempt->launch_time);
  job->OnMapCompleted(attempt->split,
                      job->ComputeMapOutput(attempt->split));
  MaybeRecordSatisfiable(job);
  CheckReduceReady(job);
  RecordDemandState();
}

void JobTracker::CheckReduceReady(Job* job) {
  if (!job->ReadyForReduce()) return;
  job->set_state(JobState::kReducing);
  reduce_ready_.push_back(job);
}

void JobTracker::LaunchReduce(Job* job, int node_id) {
  static const prof::PhaseId kLaunchReducePhase =
      prof::RegisterPhase("mapred", "launch_reduce");
  prof::ScopedTimer prof_frame(kLaunchReducePhase);
  cluster::Node* node = cluster_->node(node_id);
  node->AcquireReduceSlot();
  history_.Record(sim_->Now(), job->id(), JobEventKind::kReduceStarted, -1,
                  node_id);
  job->reduce_launch_time = sim_->Now();
  if (obs_ != nullptr) {
    obs_->Count(obs_->m().reduces_launched);
    if (obs::EventGraph* graph = obs_->graph()) {
      graph->ReduceStarted(job->id(), sim_->Now());
    }
  }

  const auto& config = cluster_->config();
  uint64_t output_records = job->output_records();
  // The single reduce task shuffles every map-output record across the
  // cluster interconnect and merges them (paper Algorithm 2).
  double shuffle_bytes = static_cast<double>(output_records) * 132.0;
  double cpu_demand = static_cast<double>(output_records) *
                      config.reduce_cpu_cost_per_record;

  sim_->Schedule(config.task_startup_seconds,
                 sim::EventClass::kTaskLifecycle,
                 [this, job, node_id, shuffle_bytes, cpu_demand] {
    // Cross-shard OK: serial engine, see the map-attempt allocation.
    DMR_CROSS_SHARD_OK auto remaining = std::allocate_shared<int>(
        sim::ArenaAllocator<int>(sim_->arena()), 2);
    auto on_part_done = [this, job, node_id, remaining] {
      if (--(*remaining) == 0) OnReduceComplete(job, node_id);
    };
    cluster_->network()->Submit(shuffle_bytes, on_part_done);
    cluster_->node(node_id)->cpu()->Submit(cpu_demand, on_part_done);
  });
}

void JobTracker::OnReduceComplete(Job* job, int node_id) {
  cluster_->node(node_id)->ReleaseReduceSlot();

  uint64_t k = job->conf().sample_size();
  uint64_t produced = job->output_records();
  job->set_result_records(k > 0 ? std::min(k, produced) : produced);
  job->set_state(JobState::kSucceeded);
  job->set_finish_time(sim_->Now());
  --active_jobs_;

  history_.Record(sim_->Now(), job->id(), JobEventKind::kJobCompleted);
  DMR_LOG(Info) << "job " << job->id() << " completed in "
                << sim_->Now() - job->submit_time() << " s ("
                << job->maps_completed() << " splits processed)";
  if (obs_ != nullptr) {
    obs_->Count(obs_->m().jobs_completed);
    obs_->Observe(obs_->m().job_response,
                  sim_->Now() - job->submit_time());
    if (tl_ != nullptr) {
      tl_->Observe(tl_job_response_, sim_->Now() - job->submit_time());
      auto user_it = active_by_user_.find(job->conf().user());
      if (user_it != active_by_user_.end()) --user_it->second;
    }
    if (obs::TraceStream* trace = obs_->trace()) {
      obs::TraceArgs args;
      args.Set("job", job->id());
      // Reduce tasks render on the lane after the node's map slots.
      trace->Complete(job->reduce_launch_time,
                      sim_->Now() - job->reduce_launch_time, node_id,
                      cluster_->node(node_id)->map_slots(),
                      "reduce j" + std::to_string(job->id()), "reduce", args);
      trace->AsyncEnd(sim_->Now(), static_cast<uint64_t>(job->id()),
                      trace->num_pids() - 1,
                      "job " + std::to_string(job->id()), "job");
    }
  }
  if (obs_ != nullptr) {
    if (obs::EventGraph* graph = obs_->graph()) {
      graph->JobCompleted(job->id(), sim_->Now());
    }
    if (obs::Ledger* ledger = obs_->ledger()) {
      if (active_jobs_ == 0) ledger->MarkQuiescent(sim_->Now());
    }
    RecordDemandState();
  }
  JobStats stats = job->GetStats();
  stats.history = history_.ForJob(job->id());
  completed_jobs_.push_back(stats);
  auto cb_it = callbacks_.find(job->id());
  CompletionCallback cb;
  if (cb_it != callbacks_.end()) {
    cb = std::move(cb_it->second);
    callbacks_.erase(cb_it);
  }
  if (cb) cb(stats);
}

}  // namespace dmr::mapred
