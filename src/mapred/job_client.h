#ifndef DMR_MAPRED_JOB_CLIENT_H_
#define DMR_MAPRED_JOB_CLIENT_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "mapred/input_provider.h"
#include "mapred/job_conf.h"
#include "mapred/job_tracker.h"

namespace dmr::mapred {

/// \brief A complete job submission.
struct JobSubmission {
  JobConf conf;
  /// The job's complete input (what the Input Provider is initialized with).
  std::vector<InputSplit> input;
  /// Stands in for the user map function's output volume (see Job).
  MapOutputModel output_model;
  /// Required when conf.dynamic_job() is true; ignored otherwise.
  std::shared_ptr<InputProvider> input_provider;
};

/// \brief Client-side job submission and dynamic-job driving — the analogue
/// of Hadoop's JobClient plus the paper's client-side Input Provider loop.
///
/// For a dynamic job the client initializes the Input Provider with the full
/// input set, feeds the initial splits to the JobTracker, and then, every
/// EvaluationInterval seconds, fetches job status and cluster load from the
/// tracker and — when the Work Threshold is met — invokes the provider and
/// applies its response (paper Section IV). The JobTracker never learns
/// about providers or policies.
class JobClient {
 public:
  explicit JobClient(JobTracker* tracker);

  /// Submits a job; `on_complete` fires at job completion with final stats
  /// (including provider_evaluations / input_increments for dynamic jobs).
  Result<int> Submit(JobSubmission submission,
                     JobTracker::CompletionCallback on_complete);

  JobTracker* tracker() const { return tracker_; }
  sim::Simulation* simulation() const { return sim_; }

 private:
  struct DynamicLoop;

  void ScheduleEvaluation(std::shared_ptr<DynamicLoop> loop);
  void RunEvaluation(std::shared_ptr<DynamicLoop> loop);

  JobTracker* tracker_;
  sim::Simulation* sim_;
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_JOB_CLIENT_H_
