#include "mapred/job_history.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dmr::mapred {

const char* JobEventKindToString(JobEventKind kind) {
  switch (kind) {
    case JobEventKind::kSubmitted:
      return "SUBMITTED";
    case JobEventKind::kSplitsAdded:
      return "SPLITS_ADDED";
    case JobEventKind::kInputFinalized:
      return "INPUT_FINALIZED";
    case JobEventKind::kMapLaunched:
      return "MAP_LAUNCHED";
    case JobEventKind::kBackupLaunched:
      return "BACKUP_LAUNCHED";
    case JobEventKind::kMapCompleted:
      return "MAP_COMPLETED";
    case JobEventKind::kMapFailed:
      return "MAP_FAILED";
    case JobEventKind::kAttemptKilled:
      return "ATTEMPT_KILLED";
    case JobEventKind::kReduceStarted:
      return "REDUCE_STARTED";
    case JobEventKind::kJobCompleted:
      return "JOB_COMPLETED";
  }
  return "?";
}

std::string JobEvent::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "t=%-9.2f job %-3d %-16s detail=%d node=%d",
                time, job_id, JobEventKindToString(kind), detail, node_id);
  return buf;
}

std::string JobHistory::ToJson(const std::vector<JobEvent>& events) {
  std::string out = "[";
  char buf[160];
  for (size_t i = 0; i < events.size(); ++i) {
    const JobEvent& ev = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"time\": %.9g, \"job\": %d, \"kind\": \"%s\", "
                  "\"detail\": %d, \"node\": %d}",
                  i == 0 ? "" : ", ", ev.time, ev.job_id,
                  JobEventKindToString(ev.kind), ev.detail, ev.node_id);
    out += buf;
  }
  out += "]";
  return out;
}

void JobHistory::Record(double time, int job_id, JobEventKind kind,
                        int detail, int node_id) {
  events_.push_back(JobEvent{time, job_id, kind, detail, node_id});
}

std::vector<JobEvent> JobHistory::ForJob(int job_id) const {
  std::vector<JobEvent> out;
  for (const auto& ev : events_) {
    if (ev.job_id == job_id) out.push_back(ev);
  }
  return out;
}

std::string JobHistory::RenderTimeline(int job_id,
                                       double bucket_seconds) const {
  std::vector<JobEvent> events = ForJob(job_id);
  if (events.empty()) return "(no events for job)\n";
  if (bucket_seconds <= 0) bucket_seconds = 5.0;

  double start = events.front().time;
  double end = events.back().time;
  int buckets = std::max(1, static_cast<int>(std::ceil(
                                (end - start) / bucket_seconds)) +
                                1);

  // Running-map occupancy per bucket via a sweep over launch/finish events.
  std::vector<int> running(buckets, 0);
  int current = 0;
  size_t next_event = 0;
  for (int b = 0; b < buckets; ++b) {
    double bucket_end = start + (b + 1) * bucket_seconds;
    int peak = current;
    while (next_event < events.size() &&
           events[next_event].time < bucket_end) {
      switch (events[next_event].kind) {
        case JobEventKind::kMapLaunched:
        case JobEventKind::kBackupLaunched:
          ++current;
          break;
        case JobEventKind::kMapCompleted:
        case JobEventKind::kMapFailed:
        case JobEventKind::kAttemptKilled:
          --current;
          break;
        default:
          break;
      }
      peak = std::max(peak, current);
      ++next_event;
    }
    running[b] = peak;
  }

  std::string out;
  char line[160];
  for (int b = 0; b < buckets; ++b) {
    int bar = std::min(running[b], 100);
    std::snprintf(line, sizeof(line), "t=%7.1fs |%-s%s (%d)\n",
                  start + b * bucket_seconds,
                  std::string(bar, '#').c_str(),
                  running[b] > 100 ? "+" : "", running[b]);
    out += line;
  }
  return out;
}

}  // namespace dmr::mapred
