#ifndef DMR_MAPRED_COUNTERS_H_
#define DMR_MAPRED_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dmr::mapred {

/// Standard counter names (the analogue of Hadoop's built-in counters).
inline constexpr const char* kCounterMapInputRecords = "MAP_INPUT_RECORDS";
inline constexpr const char* kCounterMapOutputRecords = "MAP_OUTPUT_RECORDS";
inline constexpr const char* kCounterSplitsProcessed = "SPLITS_PROCESSED";
inline constexpr const char* kCounterLocalMaps = "DATA_LOCAL_MAPS";
inline constexpr const char* kCounterRemoteMaps = "REMOTE_MAPS";
inline constexpr const char* kCounterFailedMaps = "FAILED_MAP_ATTEMPTS";
inline constexpr const char* kCounterSpeculativeMaps = "SPECULATIVE_MAPS";
inline constexpr const char* kCounterReduceInputRecords =
    "REDUCE_INPUT_RECORDS";
inline constexpr const char* kCounterResultRecords = "RESULT_RECORDS";

/// \brief A named bag of 64-bit counters, as exposed per job by Hadoop.
/// Deltas may be negative (Hadoop itself decrements counters when a failed
/// or killed attempt's partial progress is rolled back), so values are not
/// monotone over time. Cheap to copy into JobStats snapshots.
class Counters {
 public:
  /// Adds `delta` (may be negative) to `name`, creating it at 0.
  void Add(std::string_view name, int64_t delta);
  void Increment(std::string_view name) { Add(name, 1); }

  /// Value of `name`; 0 when never touched.
  int64_t Get(std::string_view name) const;

  bool Contains(std::string_view name) const;
  size_t size() const { return values_.size(); }

  /// Merges another bag into this one (summing shared names).
  void Merge(const Counters& other);

  const std::map<std::string, int64_t, std::less<>>& entries() const {
    return values_;
  }

  /// One counter per line, "NAME = value", sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, int64_t, std::less<>> values_;
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_COUNTERS_H_
