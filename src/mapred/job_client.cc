#include "mapred/job_client.h"

#include <algorithm>

#include "common/host_clock.h"
#include "common/logging.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "prof/prof.h"

namespace dmr::mapred {

namespace {

// Host wall-clock micros at the start of a provider decision (0 when no
// scope is attached; the paired duration is then never recorded).
double DecisionStart(const obs::Scope* obs) {
  return obs != nullptr ? HostClock::NowMicros() : 0.0;
}

/// Records one Input Provider decision: counters by kind, host wall-clock
/// decision latency, gauges from well-known diagnostics, and an instant
/// trace event on the client track carrying every diagnostic as an arg.
void RecordProviderDecision(obs::Scope* obs, double now, int job_id,
                            const InputResponse& response, double t0,
                            bool initial) {
  if (obs == nullptr) return;
  const obs::StandardMetrics& m = obs->m();
  obs->Observe(m.provider_decision, HostClock::ElapsedMicros(t0));
  if (!initial) obs->Count(m.provider_evaluations);
  switch (response.kind) {
    case InputResponseKind::kInputAvailable:
      obs->Count(m.provider_grows);
      break;
    case InputResponseKind::kNoInputAvailable:
      obs->Count(m.provider_waits);
      break;
    case InputResponseKind::kEndOfInput:
      obs->Count(m.provider_end_of_input);
      break;
  }
  for (const auto& [name, value] : response.diagnostics) {
    if (name == "selectivity_estimate") {
      obs->SetGauge(m.selectivity_estimate, value);
    } else if (name == "skew_cv") {
      obs->SetGauge(m.observed_skew_cv, value);
    }
  }
  if (obs::TraceStream* trace = obs->trace()) {
    obs::TraceArgs args;
    args.Set("job", job_id);
    args.Set("kind", InputResponseKindToString(response.kind));
    args.Set("splits", static_cast<int64_t>(response.splits.size()));
    args.Set("initial", initial);
    for (const auto& [name, value] : response.diagnostics) {
      args.Set(name, value);
    }
    trace->Instant(now, trace->num_pids() - 1, 0, "provider.decision",
                   "provider", args);
  }
  if (obs::EventGraph* graph = obs->graph()) {
    graph->ProviderDecision(job_id, now,
                            InputResponseKindToString(response.kind));
  }
  if (obs::FlightRecorder* flight = obs->flight()) {
    obs::FlightEventKind kind = obs::FlightEventKind::kProviderGrow;
    switch (response.kind) {
      case InputResponseKind::kInputAvailable:
        kind = obs::FlightEventKind::kProviderGrow;
        break;
      case InputResponseKind::kNoInputAvailable:
        kind = obs::FlightEventKind::kProviderWait;
        break;
      case InputResponseKind::kEndOfInput:
        kind = obs::FlightEventKind::kProviderEndOfInput;
        break;
    }
    flight->Append(now, kind, job_id, /*node=*/-1,
                   static_cast<int32_t>(response.splits.size()),
                   /*value=*/initial ? 1.0 : 0.0);
  }
}

}  // namespace

const char* InputResponseKindToString(InputResponseKind kind) {
  switch (kind) {
    case InputResponseKind::kEndOfInput:
      return "end-of-input";
    case InputResponseKind::kInputAvailable:
      return "input-available";
    case InputResponseKind::kNoInputAvailable:
      return "no-input-available";
  }
  return "?";
}

/// Per-dynamic-job evaluation-loop state, kept alive by the scheduled
/// events that reference it.
struct JobClient::DynamicLoop {
  int job_id = -1;
  std::shared_ptr<InputProvider> provider;
  double eval_interval = 4.0;
  double work_threshold_pct = 0.0;
  int splits_total = 0;
  int completed_at_last_invoke = 0;
  int provider_evaluations = 0;
  int input_increments = 0;
  bool stopped = false;
};

JobClient::JobClient(JobTracker* tracker)
    : tracker_(tracker), sim_(tracker->simulation()) {}

Result<int> JobClient::Submit(JobSubmission submission,
                              JobTracker::CompletionCallback on_complete) {
  if (!submission.conf.dynamic_job()) {
    return tracker_->SubmitStaticJob(
        std::move(submission.conf), std::move(submission.input),
        std::move(submission.output_model), std::move(on_complete));
  }

  if (!submission.input_provider) {
    return Status::InvalidArgument(
        "dynamic job requires an input provider (" +
        std::string(kDynamicProviderKey) + ")");
  }

  auto loop = std::make_shared<DynamicLoop>();
  loop->provider = submission.input_provider;
  loop->eval_interval = submission.conf.eval_interval();
  loop->work_threshold_pct = submission.conf.work_threshold_pct();
  loop->splits_total = static_cast<int>(submission.input.size());
  if (loop->eval_interval <= 0) {
    return Status::InvalidArgument("evaluation interval must be > 0");
  }

  DMR_RETURN_NOT_OK(
      loop->provider->Initialize(submission.input, submission.conf));

  // Wrap the user's callback to stamp the dynamic-loop counters into the
  // final stats.
  auto wrapped = [loop, cb = std::move(on_complete)](const JobStats& stats) {
    loop->stopped = true;
    if (!cb) return;
    JobStats augmented = stats;
    augmented.provider_evaluations = loop->provider_evaluations;
    augmented.input_increments = loop->input_increments;
    cb(augmented);
  };

  DMR_ASSIGN_OR_RETURN(
      int job_id,
      tracker_->SubmitDynamicJob(std::move(submission.conf),
                                 loop->splits_total,
                                 std::move(submission.output_model),
                                 std::move(wrapped)));
  loop->job_id = job_id;

  obs::Scope* obs = tracker_->obs();
  double t0 = DecisionStart(obs);
  static const prof::PhaseId kInitialInputPhase =
      prof::RegisterPhase("mapred", "provider_initial");
  InputResponse initial;
  {
    prof::ScopedTimer prof_frame(kInitialInputPhase);
    initial = loop->provider->GetInitialInput(tracker_->GetClusterStatus());
  }
  RecordProviderDecision(obs, sim_->Now(), job_id, initial, t0,
                         /*initial=*/true);
  switch (initial.kind) {
    case InputResponseKind::kInputAvailable:
      DMR_RETURN_NOT_OK(tracker_->AddSplits(job_id, initial.splits));
      ++loop->input_increments;
      break;
    case InputResponseKind::kEndOfInput:
      DMR_RETURN_NOT_OK(tracker_->FinalizeInput(job_id));
      break;
    case InputResponseKind::kNoInputAvailable:
      break;
  }

  if (initial.kind != InputResponseKind::kEndOfInput) {
    ScheduleEvaluation(loop);
  }
  return job_id;
}

void JobClient::ScheduleEvaluation(std::shared_ptr<DynamicLoop> loop) {
  sim_->Schedule(loop->eval_interval, sim::EventClass::kInputGrowth,
                 [this, loop] { RunEvaluation(loop); });
}

void JobClient::RunEvaluation(std::shared_ptr<DynamicLoop> loop) {
  if (loop->stopped) return;
  auto complete = tracker_->IsJobComplete(loop->job_id);
  if (!complete.ok() || *complete) return;

  auto progress_result = tracker_->GetJobProgress(loop->job_id);
  if (!progress_result.ok()) return;
  const JobProgress& progress = *progress_result;

  if (progress.splits_added >= loop->splits_total &&
      !progress.starved()) {
    // Whole input already handed over; nothing a provider could add. Wait
    // for the in-flight maps, then let the starved path finalize.
    ScheduleEvaluation(loop);
    return;
  }

  // Work Threshold (paper Section III-B): require enough new partitions
  // processed since the last invocation, as a % of the job's total input.
  // Deviation from the letter of the paper: a *starved* job (all added
  // input processed, nothing running) is always evaluated — otherwise a
  // conservative policy whose per-step additions are below the threshold
  // could never be re-evaluated and the job would hang (see DESIGN.md).
  double threshold_splits =
      loop->work_threshold_pct / 100.0 *
      static_cast<double>(loop->splits_total);
  int new_done = progress.maps_completed - loop->completed_at_last_invoke;
  bool threshold_met =
      static_cast<double>(new_done) >= std::max(1.0, threshold_splits);

  if (threshold_met || progress.starved()) {
    loop->completed_at_last_invoke = progress.maps_completed;
    ++loop->provider_evaluations;
    obs::Scope* obs = tracker_->obs();
    double t0 = DecisionStart(obs);
    static const prof::PhaseId kEvaluatePhase =
        prof::RegisterPhase("mapred", "provider_evaluate");
    InputResponse response;
    {
      prof::ScopedTimer prof_frame(kEvaluatePhase);
      response = loop->provider->Evaluate(progress, tracker_->GetClusterStatus());
    }
    RecordProviderDecision(obs, sim_->Now(), loop->job_id, response, t0,
                           /*initial=*/false);
    switch (response.kind) {
      case InputResponseKind::kEndOfInput: {
        Status st = tracker_->FinalizeInput(loop->job_id);
        DMR_CHECK(st.ok()) << st.ToString();
        loop->stopped = true;  // provider is not invoked further
        return;
      }
      case InputResponseKind::kInputAvailable: {
        Status st = tracker_->AddSplits(loop->job_id, response.splits);
        DMR_CHECK(st.ok()) << st.ToString();
        ++loop->input_increments;
        break;
      }
      case InputResponseKind::kNoInputAvailable:
        break;
    }
  }
  ScheduleEvaluation(loop);
}

}  // namespace dmr::mapred
