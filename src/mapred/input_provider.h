#ifndef DMR_MAPRED_INPUT_PROVIDER_H_
#define DMR_MAPRED_INPUT_PROVIDER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mapred/job_conf.h"
#include "mapred/types.h"

namespace dmr::mapred {

/// \brief The three possible Input Provider responses (paper Figure 3).
enum class InputResponseKind {
  /// The job does not need to process additional input; in-flight maps
  /// finish, then the job proceeds to the shuffle/reduce phase.
  kEndOfInput,
  /// Additional partitions should be processed next.
  kInputAvailable,
  /// "Wait and see": postpone the decision until the next evaluation.
  kNoInputAvailable,
};

const char* InputResponseKindToString(InputResponseKind kind);

/// \brief An Input Provider's answer to an evaluation.
struct InputResponse {
  InputResponseKind kind = InputResponseKind::kNoInputAvailable;
  /// Populated only for kInputAvailable.
  std::vector<InputSplit> splits;
  /// Optional named decision diagnostics (e.g. the provider's selectivity
  /// estimate, grab limit, observed skew). Purely observational: the
  /// JobClient forwards them to trace/metric sinks and otherwise ignores
  /// them, keeping the tracker/client agnostic of provider internals.
  std::vector<std::pair<std::string, double>> diagnostics;

  InputResponse& WithDiagnostic(std::string name, double value) {
    diagnostics.emplace_back(std::move(name), value);
    return *this;
  }

  static InputResponse EndOfInput() {
    InputResponse response;
    response.kind = InputResponseKind::kEndOfInput;
    return response;
  }
  static InputResponse NoInput() {
    InputResponse response;
    response.kind = InputResponseKind::kNoInputAvailable;
    return response;
  }
  static InputResponse Available(std::vector<InputSplit> splits) {
    InputResponse response;
    response.kind = InputResponseKind::kInputAvailable;
    response.splits = std::move(splits);
    return response;
  }
};

/// \brief Pluggable, client-side logic that controls a dynamic job's intake
/// of input — the paper's core mechanism (Section III-A).
///
/// The provider lives on the client side (initialized by the JobClient, the
/// JobTracker stays agnostic of it, Section IV). The JobClient invokes
/// Evaluate at regular intervals with the job's progress and the cluster
/// load; the provider answers with one of the three responses above.
class InputProvider {
 public:
  virtual ~InputProvider() = default;

  /// Called once at submission with the complete set of input partitions.
  virtual Status Initialize(const std::vector<InputSplit>& all_splits,
                            const JobConf& conf) = 0;

  /// Returns the initial set of partitions the job starts with.
  virtual InputResponse GetInitialInput(const ClusterStatus& cluster) = 0;

  /// Periodic evaluation of the job's need for additional input.
  virtual InputResponse Evaluate(const JobProgress& progress,
                                 const ClusterStatus& cluster) = 0;
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_INPUT_PROVIDER_H_
