#ifndef DMR_MAPRED_JOB_CONF_H_
#define DMR_MAPRED_JOB_CONF_H_

#include <string>

#include "common/properties.h"

namespace dmr::mapred {

/// Configuration keys understood by the execution engine. The dynamic.* keys
/// are the JobConf extension the paper introduces in Section IV.
inline constexpr const char* kJobNameKey = "mapred.job.name";
inline constexpr const char* kUserNameKey = "user.name";
inline constexpr const char* kInputFileKey = "mapred.input.file";
inline constexpr const char* kNumReduceTasksKey = "mapred.reduce.tasks";

/// Boolean flag marking the job as dynamic (paper: "dynamic.job").
inline constexpr const char* kDynamicJobKey = "dynamic.job";
/// Name of the growth policy controlling the job (paper:
/// "dynamic.job.policy").
inline constexpr const char* kDynamicPolicyKey = "dynamic.job.policy";
/// Class name of the InputProvider implementation (paper:
/// "dynamic.input.provider"). Informational in the simulator — the provider
/// object itself is attached to the job submission.
inline constexpr const char* kDynamicProviderKey = "dynamic.input.provider";
/// Seconds between Input Provider evaluations (paper: 4 s).
inline constexpr const char* kEvalIntervalKey = "dynamic.eval.interval.secs";
/// Work threshold in percent of input partitions (paper Table I).
inline constexpr const char* kWorkThresholdKey = "dynamic.work.threshold.pct";
/// Required sample size k for predicate-based sampling jobs.
inline constexpr const char* kSampleSizeKey = "sampling.sample.size";
/// SQL text of the sampling predicate (set by the Hive compiler).
inline constexpr const char* kPredicateKey = "sampling.predicate";

/// \brief The primary interface for describing a job to the engine — the
/// analogue of Hadoop's JobConf, extended with the dynamic.* parameters.
class JobConf {
 public:
  JobConf() = default;
  explicit JobConf(Properties props) : props_(std::move(props)) {}

  Properties& props() { return props_; }
  const Properties& props() const { return props_; }

  std::string name() const { return props_.Get(kJobNameKey, "job"); }
  void set_name(std::string_view name) { props_.Set(kJobNameKey, name); }

  std::string user() const { return props_.Get(kUserNameKey, "default"); }
  void set_user(std::string_view user) { props_.Set(kUserNameKey, user); }

  std::string input_file() const { return props_.Get(kInputFileKey, ""); }
  void set_input_file(std::string_view f) { props_.Set(kInputFileKey, f); }

  bool dynamic_job() const {
    return props_.GetBool(kDynamicJobKey, false).ValueOr(false);
  }
  void set_dynamic_job(bool dynamic) {
    props_.SetBool(kDynamicJobKey, dynamic);
  }

  std::string policy() const { return props_.Get(kDynamicPolicyKey, ""); }
  void set_policy(std::string_view policy) {
    props_.Set(kDynamicPolicyKey, policy);
  }

  double eval_interval() const {
    return props_.GetDouble(kEvalIntervalKey, 4.0).ValueOr(4.0);
  }
  void set_eval_interval(double seconds) {
    props_.SetDouble(kEvalIntervalKey, seconds);
  }

  double work_threshold_pct() const {
    return props_.GetDouble(kWorkThresholdKey, 0.0).ValueOr(0.0);
  }
  void set_work_threshold_pct(double pct) {
    props_.SetDouble(kWorkThresholdKey, pct);
  }

  uint64_t sample_size() const {
    return static_cast<uint64_t>(props_.GetInt(kSampleSizeKey, 0).ValueOr(0));
  }
  void set_sample_size(uint64_t k) {
    props_.SetInt(kSampleSizeKey, static_cast<int64_t>(k));
  }

 private:
  Properties props_;
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_JOB_CONF_H_
