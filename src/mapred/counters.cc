#include "mapred/counters.h"

namespace dmr::mapred {

void Counters::Add(std::string_view name, int64_t delta) {
  auto it = values_.find(name);
  if (it == values_.end()) {
    values_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

int64_t Counters::Get(std::string_view name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

bool Counters::Contains(std::string_view name) const {
  return values_.find(name) != values_.end();
}

void Counters::Merge(const Counters& other) {
  for (const auto& [name, value] : other.values_) Add(name, value);
}

std::string Counters::ToString() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    out += name;
    out += " = ";
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

}  // namespace dmr::mapred
