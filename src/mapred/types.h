#ifndef DMR_MAPRED_TYPES_H_
#define DMR_MAPRED_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/file_system.h"
#include "mapred/counters.h"
#include "mapred/job_history.h"

namespace dmr::mapred {

/// \brief A candidate read location for a split (one stored replica).
struct SplitLocation {
  int node_id = 0;
  int disk_id = 0;
  /// Physical layout of this copy (per-replica divergent layouts,
  /// DESIGN.md §16); kRow is the paper's plain file.
  dfs::ReplicaLayout layout = dfs::ReplicaLayout::kRow;
};

/// \brief One unit of map input: a DFS partition plus the record statistics
/// the simulator's cost/output models need.
///
/// `num_matching` is ground truth about the data (how many records satisfy
/// the job's predicate). The *job* never reads it directly — it only observes
/// output counts of finished map tasks, exactly like a real Hadoop job.
struct InputSplit {
  std::string file;
  int index = 0;
  uint64_t size_bytes = 0;
  uint64_t num_records = 0;
  uint64_t num_matching = 0;
  /// Primary location (kept in sync with locations.front() when replicas
  /// are present).
  int node_id = 0;
  int disk_id = 0;
  /// All replica locations, primary first; empty means primary only.
  std::vector<SplitLocation> locations;
  /// Virtual time the split was handed to the JobTracker. Stamped by
  /// AddSplits only when observability is attached (feeds the task-wait
  /// latency histogram); 0 otherwise.
  double queued_time = 0.0;
  /// Adaptive-layout stats hints (DESIGN.md §16), filled by layers that can
  /// see partition stats (LocalRuntime, testbed dataset builders). Fraction
  /// of the split's rows a stats-aware reader must physically scan for the
  /// job's predicate: 1.0 = no stats, scan everything (the default keeps
  /// every pre-existing path at full cost); 0.0 = provably empty or
  /// provably all-matching, costs only a stats-read.
  double scan_fraction = 1.0;
  /// Per-split selectivity bound derived from the same stats; < 0 means
  /// unknown (fall back to the provider's global estimate).
  double hint_selectivity = -1.0;

  /// All candidate read locations, uniformly (primary first).
  std::vector<SplitLocation> all_locations() const {
    if (!locations.empty()) return locations;
    return {SplitLocation{node_id, disk_id}};
  }

  /// True when some replica lives on `node`.
  bool IsLocalTo(int node) const {
    for (const auto& loc : all_locations()) {
      if (loc.node_id == node) return true;
    }
    return false;
  }

  /// The replica on `node`; for a remote read, the best-layout replica
  /// (ties keep replica order, so this is the primary when layouts do not
  /// diverge — the pre-layout behaviour).
  SplitLocation ReadLocationFor(int node) const {
    std::vector<SplitLocation> locs = all_locations();
    for (const auto& loc : locs) {
      if (loc.node_id == node) return loc;
    }
    const SplitLocation* best = &locs.front();
    for (const auto& loc : locs) {
      if (dfs::LayoutQuality(loc.layout) > dfs::LayoutQuality(best->layout)) {
        best = &loc;
      }
    }
    return *best;
  }
};

/// \brief Cluster-load summary handed to Input Providers (paper Section III:
/// "statistics about ... the current load, and the availability of map slots
/// in the cluster").
struct ClusterStatus {
  int total_map_slots = 0;
  int occupied_map_slots = 0;
  int running_jobs = 0;

  int available_map_slots() const {
    return total_map_slots - occupied_map_slots;
  }
};

/// \brief Job-progress snapshot handed to Input Providers at each evaluation
/// (paper Section IV: number of records processed and output tuples produced
/// by completed map tasks, plus the job status).
struct JobProgress {
  /// Splits handed to the job so far (scheduled + running + done).
  int splits_added = 0;
  /// Total splits in the job's complete input.
  int splits_total = 0;
  int maps_completed = 0;
  int maps_running = 0;
  int maps_pending = 0;
  /// Input records consumed by *completed* map tasks.
  uint64_t records_processed = 0;
  /// Output records produced by *completed* map tasks.
  uint64_t output_records = 0;
  /// Records in splits that are added but not yet finished.
  uint64_t pending_records = 0;
  /// Virtual time of the snapshot.
  double now = 0.0;

  /// True when every added split has finished and nothing is running.
  bool starved() const { return maps_running == 0 && maps_pending == 0; }
};

/// \brief Final accounting for a completed job.
struct JobStats {
  int job_id = -1;
  std::string name;
  std::string user;
  std::string policy;
  double submit_time = 0.0;
  double finish_time = 0.0;
  int splits_total = 0;
  int splits_processed = 0;
  uint64_t records_processed = 0;
  uint64_t output_records = 0;
  /// Records the reduce phase emitted (= min(k, output) for sampling jobs).
  uint64_t result_records = 0;
  int local_maps = 0;
  int remote_maps = 0;
  /// Failed map attempts that were retried.
  int failed_maps = 0;
  /// Speculative (backup) map attempts launched for this job.
  int speculative_maps = 0;
  /// Number of times the Input Provider was invoked / added input.
  int provider_evaluations = 0;
  int input_increments = 0;
  /// Hadoop-style named counters (see counters.h for the standard names).
  Counters counters;
  /// This job's lifecycle events in time order (the JobHistory slice),
  /// so callers can assert on ordering without reaching into the tracker.
  std::vector<JobEvent> history;

  double response_time() const { return finish_time - submit_time; }
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_TYPES_H_
