#ifndef DMR_MAPRED_JOB_HISTORY_H_
#define DMR_MAPRED_JOB_HISTORY_H_

#include <string>
#include <vector>

namespace dmr::mapred {

/// \brief Kinds of recorded lifecycle events (the analogue of Hadoop's
/// JobHistory log).
enum class JobEventKind {
  kSubmitted,
  kSplitsAdded,
  kInputFinalized,
  kMapLaunched,
  kBackupLaunched,
  kMapCompleted,
  kMapFailed,
  kAttemptKilled,
  kReduceStarted,
  kJobCompleted,
};

const char* JobEventKindToString(JobEventKind kind);

/// \brief One timestamped lifecycle event.
struct JobEvent {
  double time = 0.0;
  int job_id = -1;
  JobEventKind kind = JobEventKind::kSubmitted;
  /// Split index for task events, count for kSplitsAdded, -1 otherwise.
  int detail = -1;
  /// Node for task events, -1 otherwise.
  int node_id = -1;

  std::string ToString() const;
};

/// \brief An append-only log of job lifecycle events, recorded by the
/// JobTracker. Useful for debugging policies and for rendering execution
/// timelines (see RenderTimeline / examples/job_timeline).
class JobHistory {
 public:
  void Record(double time, int job_id, JobEventKind kind, int detail = -1,
              int node_id = -1);

  const std::vector<JobEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Events of one job, in time order.
  std::vector<JobEvent> ForJob(int job_id) const;

  /// Renders `events` as a JSON array of event objects
  /// (`[{"time": ..., "job": ..., "kind": "...", ...}, ...]`).
  static std::string ToJson(const std::vector<JobEvent>& events);
  /// The whole log as JSON.
  std::string ToJson() const { return ToJson(events_); }

  /// Renders an ASCII occupancy timeline for a job: one row per
  /// `bucket_seconds`, bar length = map tasks running in that bucket.
  std::string RenderTimeline(int job_id, double bucket_seconds = 5.0) const;

  void Clear() { events_.clear(); }

 private:
  std::vector<JobEvent> events_;
};

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_JOB_HISTORY_H_
