#ifndef DMR_MAPRED_INPUT_SPLITS_H_
#define DMR_MAPRED_INPUT_SPLITS_H_

#include <vector>

#include "common/result.h"
#include "dfs/file_system.h"
#include "mapred/types.h"

namespace dmr::mapred {

/// \brief Builds the engine's InputSplit list for a DFS file, attaching the
/// per-partition matching-record counts from the dataset's skew profile.
///
/// `matching_per_partition` must have one entry per file partition; pass an
/// empty vector for jobs whose output model ignores matching counts.
Result<std::vector<InputSplit>> MakeInputSplits(
    const dfs::FileInfo& file,
    const std::vector<uint64_t>& matching_per_partition);

}  // namespace dmr::mapred

#endif  // DMR_MAPRED_INPUT_SPLITS_H_
