#include "mapred/job.h"

#include "common/logging.h"

namespace dmr::mapred {

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kMapping:
      return "MAPPING";
    case JobState::kReducing:
      return "REDUCING";
    case JobState::kSucceeded:
      return "SUCCEEDED";
    case JobState::kKilled:
      return "KILLED";
  }
  return "?";
}

Job::Job(int id, JobConf conf, int splits_total, MapOutputModel output_model,
         double submit_time)
    : id_(id),
      conf_(std::move(conf)),
      submit_time_(submit_time),
      splits_total_(splits_total),
      output_model_(std::move(output_model)) {
  DMR_CHECK(output_model_ != nullptr);
}

void Job::IndexPending(const InputSplit& split) {
  int id = next_pending_id_++;
  pending_splits_[id] = split;
  for (const auto& loc : split.all_locations()) {
    pending_ids_by_node_[loc.node_id].push_back(id);
  }
}

void Job::AddSplits(const std::vector<InputSplit>& splits) {
  DMR_CHECK(!input_finalized_) << "job " << id_ << ": input already final";
  for (const auto& split : splits) {
    IndexPending(split);
    ++splits_added_;
    records_added_ += split.num_records;
  }
}

void Job::RequeueSplit(const InputSplit& split) { IndexPending(split); }

InputSplit Job::TakePendingById(int id) {
  auto it = pending_splits_.find(id);
  DMR_CHECK(it != pending_splits_.end());
  InputSplit split = it->second;
  pending_splits_.erase(it);
  // Stale ids left in other nodes' queues are pruned lazily.
  return split;
}

int Job::FrontLiveId(int node_id) const {
  auto it = pending_ids_by_node_.find(node_id);
  if (it == pending_ids_by_node_.end()) return -1;
  auto& queue = it->second;
  while (!queue.empty() && !pending_splits_.count(queue.front())) {
    queue.pop_front();  // prune entries taken via another replica
  }
  if (queue.empty()) {
    pending_ids_by_node_.erase(it);
    return -1;
  }
  return queue.front();
}

bool Job::HasLocalPending(int node_id) const {
  return FrontLiveId(node_id) >= 0;
}

std::optional<InputSplit> Job::TakeLocalPending(int node_id) {
  int id = FrontLiveId(node_id);
  if (id < 0) return std::nullopt;
  pending_ids_by_node_[node_id].pop_front();
  return TakePendingById(id);
}

std::optional<InputSplit> Job::TakeAnyPending() {
  if (pending_splits_.empty()) return std::nullopt;
  // Prefer the node with the deepest live backlog so remote pulls drain
  // hot spots first.
  int best_node = -1;
  size_t best_depth = 0;
  for (auto it = pending_ids_by_node_.begin();
       it != pending_ids_by_node_.end();) {
    int node = it->first;
    if (FrontLiveId(node) < 0) {
      // FrontLiveId erased the entry; restart iteration at the next node.
      it = pending_ids_by_node_.upper_bound(node);
      continue;
    }
    if (it->second.size() > best_depth) {
      best_depth = it->second.size();
      best_node = node;
    }
    ++it;
  }
  DMR_CHECK_GE(best_node, 0);
  return TakeLocalPending(best_node);
}

int Job::BestPendingLayoutQuality(int node_id) const {
  int best = -1;
  for (const auto& [id, split] : pending_splits_) {
    for (const auto& loc : split.all_locations()) {
      if (node_id >= 0 && loc.node_id != node_id) continue;
      int quality = dfs::LayoutQuality(loc.layout);
      if (quality > best) best = quality;
    }
  }
  return best;
}

std::optional<InputSplit> Job::TakeBestLayoutPending(int node_id) {
  int best_quality = -1;
  int best_id = -1;
  // pending_splits_ is ordered by insertion id, and only a strictly
  // better quality displaces the candidate, so ties keep FIFO order.
  for (const auto& [id, split] : pending_splits_) {
    for (const auto& loc : split.all_locations()) {
      if (node_id >= 0 && loc.node_id != node_id) continue;
      int quality = dfs::LayoutQuality(loc.layout);
      if (quality > best_quality) {
        best_quality = quality;
        best_id = id;
      }
    }
  }
  if (best_id < 0) return std::nullopt;
  return TakePendingById(best_id);
}

int Job::OnMapLaunched(const InputSplit& split, int node_id, bool local) {
  (void)split;
  (void)node_id;
  ++maps_running_;
  if (local) {
    ++local_maps_;
  } else {
    ++remote_maps_;
  }
  return next_task_id_++;
}

void Job::OnMapFailed(const InputSplit& split) {
  (void)split;
  DMR_CHECK_GT(maps_running_, 0) << "job " << id_;
  --maps_running_;
  ++failed_maps_;
}

void Job::OnMapCompleted(const InputSplit& split, uint64_t output_records) {
  DMR_CHECK_GT(maps_running_, 0) << "job " << id_;
  --maps_running_;
  ++maps_completed_;
  records_processed_ += split.num_records;
  output_records_ += output_records;
}

void Job::RecordMapDuration(double seconds) {
  map_duration_sum_ += seconds;
  ++map_duration_count_;
}

double Job::MeanMapDuration() const {
  if (map_duration_count_ == 0) return 0.0;
  return map_duration_sum_ / static_cast<double>(map_duration_count_);
}

bool Job::ReadyForReduce() const {
  return input_finalized_ && pending_splits_.empty() && maps_running_ == 0 &&
         state_ == JobState::kMapping;
}

JobProgress Job::GetProgress(double now) const {
  JobProgress p;
  p.splits_added = splits_added_;
  p.splits_total = splits_total_;
  p.maps_completed = maps_completed_;
  p.maps_running = maps_running_;
  p.maps_pending = pending_count();
  p.records_processed = records_processed_;
  p.output_records = output_records_;
  p.pending_records = records_added_ - records_processed_;
  p.now = now;
  return p;
}

JobStats Job::GetStats() const {
  JobStats s;
  s.job_id = id_;
  s.name = conf_.name();
  s.user = conf_.user();
  s.policy = conf_.policy();
  s.submit_time = submit_time_;
  s.finish_time = finish_time_;
  s.splits_total = splits_total_;
  s.splits_processed = maps_completed_;
  s.records_processed = records_processed_;
  s.output_records = output_records_;
  s.result_records = result_records_;
  s.local_maps = local_maps_;
  s.remote_maps = remote_maps_;
  s.failed_maps = failed_maps_;
  s.speculative_maps = speculative_maps_;
  s.counters = CurrentCounters();
  return s;
}

Counters Job::CurrentCounters() const {
  Counters counters;
  counters.Add(kCounterMapInputRecords,
               static_cast<int64_t>(records_processed_));
  counters.Add(kCounterMapOutputRecords,
               static_cast<int64_t>(output_records_));
  counters.Add(kCounterSplitsProcessed, maps_completed_);
  counters.Add(kCounterLocalMaps, local_maps_);
  counters.Add(kCounterRemoteMaps, remote_maps_);
  counters.Add(kCounterFailedMaps, failed_maps_);
  counters.Add(kCounterSpeculativeMaps, speculative_maps_);
  counters.Add(kCounterReduceInputRecords,
               static_cast<int64_t>(output_records_));
  counters.Add(kCounterResultRecords,
               static_cast<int64_t>(result_records_));
  return counters;
}

}  // namespace dmr::mapred
