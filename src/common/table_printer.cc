#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace dmr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddNumericRow(const std::string& label,
                                 const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    row.emplace_back(buf);
  }
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : headers_[i];
      line += ' ';
      line += cell;
      line.append(widths[i] - cell.size(), ' ');
      line += " |";
    }
    return line + '\n';
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '|';
  }
  out += sep + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dmr
