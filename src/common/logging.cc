#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dmr {

namespace {

/// -1 marks "not yet initialized from DMR_LOG_LEVEL".
constexpr int kThresholdUnset = -1;
std::atomic<int> g_threshold{kThresholdUnset};

LogLevel ThresholdFromEnv() {
  const char* env = std::getenv("DMR_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kWarn;
  std::optional<LogLevel> parsed = Logging::ParseLevel(env);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "[WARN logging] ignoring DMR_LOG_LEVEL='%s' "
                 "(expected debug|info|warn|error|off)\n",
                 env);
    return LogLevel::kWarn;
  }
  return *parsed;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logging::threshold() {
  int value = g_threshold.load(std::memory_order_relaxed);
  if (value == kThresholdUnset) {
    int from_env = static_cast<int>(ThresholdFromEnv());
    // Lose the race gracefully: whoever published first (another thread's
    // env read or an explicit set_threshold) wins.
    if (g_threshold.compare_exchange_strong(value, from_env,
                                            std::memory_order_relaxed)) {
      value = from_env;
    }
  }
  return static_cast<LogLevel>(value);
}

void Logging::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace {
std::atomic<Logging::FatalHook> g_fatal_hook{nullptr};
}  // namespace

void Logging::set_fatal_hook(FatalHook hook) {
  g_fatal_hook.store(hook, std::memory_order_release);
}

Logging::FatalHook Logging::fatal_hook() {
  return g_fatal_hook.load(std::memory_order_acquire);
}

std::optional<LogLevel> Logging::ParseLevel(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

void LogMessage::Flush() {
  if (flushed_) return;
  flushed_ = true;
  std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
  (void)level_;
}

LogMessage::~LogMessage() { Flush(); }

FatalLogMessage::~FatalLogMessage() {
  Flush();
  // Give post-mortem machinery (the obs flight recorder) one shot at
  // dumping state; a reentrant fatal inside the hook would recurse, so
  // clear it first.
  Logging::FatalHook hook = Logging::fatal_hook();
  if (hook != nullptr) {
    Logging::set_fatal_hook(nullptr);
    hook();
  }
  std::abort();
}

}  // namespace internal
}  // namespace dmr
