#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace dmr {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logging::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void Logging::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

void LogMessage::Flush() {
  if (flushed_) return;
  flushed_ = true;
  std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
  (void)level_;
}

LogMessage::~LogMessage() { Flush(); }

FatalLogMessage::~FatalLogMessage() {
  Flush();
  std::abort();
}

}  // namespace internal
}  // namespace dmr
