#ifndef DMR_COMMON_LOGGING_H_
#define DMR_COMMON_LOGGING_H_

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

namespace dmr {

/// \brief Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// \brief Process-wide logging configuration.
///
/// Logging defaults to kWarn so that library consumers and benchmark
/// binaries are quiet unless they opt in. The initial threshold can be
/// overridden without a rebuild through the DMR_LOG_LEVEL environment
/// variable (debug | info | warn | error | off, case-insensitive); it is
/// read once, on first use, and an explicit set_threshold() always wins
/// afterwards. Messages below the threshold never evaluate their stream
/// arguments (DMR_LOG expands to a dead branch).
class Logging {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// Parses a level name ("debug", "info", "warn"/"warning", "error",
  /// "off"/"none", any case); nullopt for anything else.
  static std::optional<LogLevel> ParseLevel(const std::string& name);

  /// Installed hook runs after a fatal (DMR_CHECK) message is emitted and
  /// before std::abort() — the flight-recorder dump point. The hook must
  /// be async-signal-unsafe-tolerant only in the sense that it runs on the
  /// failing thread; it must not itself DMR_CHECK. Null clears it.
  using FatalHook = void (*)();
  static void set_fatal_hook(FatalHook hook);
  static FatalHook fatal_hook();
};

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 protected:
  /// Emits the accumulated line; idempotent.
  void Flush();

 private:
  LogLevel level_;
  bool flushed_ = false;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kError, file, line) {}
  [[noreturn]] ~FatalLogMessage();
};

}  // namespace internal
}  // namespace dmr

#define DMR_LOG(level)                                              \
  if (::dmr::LogLevel::k##level < ::dmr::Logging::threshold()) {    \
  } else                                                            \
    ::dmr::internal::LogMessage(::dmr::LogLevel::k##level, __FILE__, __LINE__)

/// Unconditional check; aborts with a message when `cond` is false.
#define DMR_CHECK(cond)                                      \
  if (cond) {                                                \
  } else                                                     \
    ::dmr::internal::FatalLogMessage(__FILE__, __LINE__)     \
        << "Check failed: " #cond " "

#define DMR_CHECK_GE(a, b) DMR_CHECK((a) >= (b))
#define DMR_CHECK_GT(a, b) DMR_CHECK((a) > (b))
#define DMR_CHECK_LE(a, b) DMR_CHECK((a) <= (b))
#define DMR_CHECK_LT(a, b) DMR_CHECK((a) < (b))
#define DMR_CHECK_EQ(a, b) DMR_CHECK((a) == (b))
#define DMR_CHECK_NE(a, b) DMR_CHECK((a) != (b))

#endif  // DMR_COMMON_LOGGING_H_
