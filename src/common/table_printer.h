#ifndef DMR_COMMON_TABLE_PRINTER_H_
#define DMR_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace dmr {

/// \brief Renders aligned ASCII tables; used by the benchmark harnesses to
/// print the paper's tables and figure series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each cell with fixed precision.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int precision = 1);

  /// Renders the table with a header separator.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmr

#endif  // DMR_COMMON_TABLE_PRINTER_H_
