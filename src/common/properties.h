#ifndef DMR_COMMON_PROPERTIES_H_
#define DMR_COMMON_PROPERTIES_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace dmr {

/// \brief An ordered string key/value configuration map.
///
/// This is the substrate for JobConf (mapred/job_conf.h) and for the policy
/// configuration file — the analogue of Hadoop's Configuration class.
class Properties {
 public:
  /// Sets (or overwrites) a key.
  void Set(std::string_view key, std::string_view value);
  void SetInt(std::string_view key, int64_t value);
  void SetDouble(std::string_view key, double value);
  void SetBool(std::string_view key, bool value);

  bool Contains(std::string_view key) const;

  /// Returns the raw value or `fallback` when absent.
  std::string Get(std::string_view key, std::string_view fallback = "") const;

  /// Typed getters; fall back when absent, error when malformed.
  Result<int64_t> GetInt(std::string_view key, int64_t fallback) const;
  Result<double> GetDouble(std::string_view key, double fallback) const;
  Result<bool> GetBool(std::string_view key, bool fallback) const;

  /// Removes a key if present; returns whether it existed.
  bool Erase(std::string_view key);

  size_t size() const { return entries_.size(); }
  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

  /// Parses "key = value" lines; '#' starts a comment; blank lines ignored.
  static Result<Properties> Parse(std::string_view text);

  /// Serializes back to the Parse() format.
  std::string ToString() const;

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace dmr

#endif  // DMR_COMMON_PROPERTIES_H_
