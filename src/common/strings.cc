#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace dmr {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    return buf;
  }
  if (seconds < 3600.0) {
    int m = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm %.1fs", m, seconds - m * 60.0);
    return buf;
  }
  int h = static_cast<int>(seconds / 3600.0);
  int m = static_cast<int>((seconds - h * 3600.0) / 60.0);
  std::snprintf(buf, sizeof(buf), "%dh %dm %.0fs", h, m,
                seconds - h * 3600.0 - m * 60.0);
  return buf;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; use strtod on a
  // NUL-terminated copy.
  std::string copy(s);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

}  // namespace dmr
