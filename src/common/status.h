#ifndef DMR_COMMON_STATUS_H_
#define DMR_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dmr {

/// \brief Error categories used across the library.
///
/// Modeled after the Arrow/RocksDB status idiom: functions that can fail
/// return a Status (or a Result<T>, see result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kIoError,
  kParseError,
  kInternal,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome carrying a code and a message.
///
/// Status is cheap to copy in the OK case (no allocation) and cheap to move
/// otherwise. It is [[nodiscard]] so that errors cannot be silently dropped.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Renders "<CODE>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace dmr

/// \brief Returns early with the given Status if it is not OK.
#define DMR_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::dmr::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// \brief Evaluates a Result<T> expression; on error returns its Status,
/// otherwise moves the value into `lhs`.
#define DMR_ASSIGN_OR_RETURN(lhs, expr)              \
  DMR_ASSIGN_OR_RETURN_IMPL(                         \
      DMR_CONCAT_NAME(_dmr_result_, __COUNTER__), lhs, expr)

#define DMR_CONCAT_NAME_INNER(x, y) x##y
#define DMR_CONCAT_NAME(x, y) DMR_CONCAT_NAME_INNER(x, y)

#define DMR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueUnsafe();

#endif  // DMR_COMMON_STATUS_H_
