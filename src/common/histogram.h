#ifndef DMR_COMMON_HISTOGRAM_H_
#define DMR_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dmr {

/// \brief Streaming summary statistics plus a percentile estimator.
///
/// Keeps all samples (the simulator produces at most tens of thousands per
/// metric) so percentiles are exact. Used for latency/response-time
/// reporting in the workload driver and benches.
class Histogram {
 public:
  void Add(double value);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  double Stddev() const;

  /// Exact percentile via nearest-rank on the sorted samples. q in [0,100].
  double Percentile(double q) const;
  double Median() const { return Percentile(50.0); }

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  void Clear();

  /// One-line summary: "n=.. mean=.. p50=.. p95=.. max=..".
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace dmr

#endif  // DMR_COMMON_HISTOGRAM_H_
