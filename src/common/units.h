#ifndef DMR_COMMON_UNITS_H_
#define DMR_COMMON_UNITS_H_

#include <cstdint>

namespace dmr {

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;
inline constexpr uint64_t kTiB = 1024ULL * kGiB;

/// Simulated time is measured in seconds (double).
using SimTime = double;

}  // namespace dmr

#endif  // DMR_COMMON_UNITS_H_
