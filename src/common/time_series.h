#ifndef DMR_COMMON_TIME_SERIES_H_
#define DMR_COMMON_TIME_SERIES_H_

#include <string>
#include <vector>

namespace dmr {

/// \brief A (time, value) series sampled at fixed or irregular intervals.
///
/// The cluster monitor records CPU utilization and disk-read rates as
/// TimeSeries (the paper samples every 30 simulated seconds).
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  void Add(double time, double value) { points_.push_back({time, value}); }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }

  /// Mean of values with time >= from (steady-state averaging after warmup).
  double MeanAfter(double from) const;

  /// Mean over the whole series.
  double Mean() const { return MeanAfter(-1.0); }

  /// Largest value in the series (0 when empty, matching Min). Seeded
  /// from the first point, not 0.0 — an all-negative series must report
  /// its true (negative) maximum.
  double Max() const;

  /// Smallest value in the series (0 when empty, matching Max).
  double Min() const;

  /// Nearest-rank percentile of the values, q in [0, 100] (clamped):
  /// the value at 1-based sorted rank ceil(q/100 * n). 0 when empty.
  /// Edge behavior: q == 0 rounds the rank up to 1, so Percentile(0) ==
  /// Min(); Percentile(100) == Max(); quantiles between two ranks take
  /// the lower sorted value (no interpolation).
  double Percentile(double q) const;

  void Clear() { points_.clear(); }

 private:
  std::vector<Point> points_;
};

}  // namespace dmr

#endif  // DMR_COMMON_TIME_SERIES_H_
