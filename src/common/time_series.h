#ifndef DMR_COMMON_TIME_SERIES_H_
#define DMR_COMMON_TIME_SERIES_H_

#include <string>
#include <vector>

namespace dmr {

/// \brief A (time, value) series sampled at fixed or irregular intervals.
///
/// The cluster monitor records CPU utilization and disk-read rates as
/// TimeSeries (the paper samples every 30 simulated seconds).
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  void Add(double time, double value) { points_.push_back({time, value}); }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }

  /// Mean of values with time >= from (steady-state averaging after warmup).
  double MeanAfter(double from) const;

  /// Mean over the whole series.
  double Mean() const { return MeanAfter(-1.0); }

  double Max() const;

  void Clear() { points_.clear(); }

 private:
  std::vector<Point> points_;
};

}  // namespace dmr

#endif  // DMR_COMMON_TIME_SERIES_H_
