#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dmr {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
  sorted_valid_ = false;
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::Stddev() const {
  size_t n = samples_.size();
  if (n < 2) return 0.0;
  double mean = Mean();
  double var = (sum_sq_ - static_cast<double>(n) * mean * mean) /
               static_cast<double>(n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (q <= 0) return sorted_.front();
  if (q >= 100) return sorted_.back();
  double rank = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  sorted_valid_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2f p50=%.2f p95=%.2f max=%.2f", count(), Mean(),
                Percentile(50), Percentile(95), max());
  return buf;
}

}  // namespace dmr
