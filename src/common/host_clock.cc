#include "common/host_clock.h"

#include <atomic>
// The one sanctioned include of a host clock; see the class comment.
#include <chrono>  // dmr-lint: allow(wall-clock) the HostClock seam itself
#include <cstdlib>
#include <cstring>

namespace dmr {

namespace {

enum class Mode : int { kUnset = 0, kReal = 1, kFrozen = 2 };

std::atomic<int> g_mode{static_cast<int>(Mode::kUnset)};

Mode ResolveMode() {
  Mode mode = static_cast<Mode>(g_mode.load(std::memory_order_acquire));
  if (mode != Mode::kUnset) return mode;
  const char* env = std::getenv("DMR_HOST_CLOCK");
  mode = (env != nullptr && std::strcmp(env, "frozen") == 0) ? Mode::kFrozen
                                                             : Mode::kReal;
  // Races with a concurrent first read resolve to the same value (the env
  // var cannot change between them), so a plain store is fine.
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
  return mode;
}

// dmr-lint: allow(wall-clock) the single place host time is actually read
std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

}  // namespace

bool HostClock::frozen() { return ResolveMode() == Mode::kFrozen; }

double HostClock::NowMicros() {
  if (frozen()) return 0.0;
  // dmr-lint: allow(wall-clock) the single place host time is actually read
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - ProcessStart())
      .count();
}

void HostClock::SetFrozenForTest(bool frozen) {
  g_mode.store(static_cast<int>(frozen ? Mode::kFrozen : Mode::kReal),
               std::memory_order_release);
}

}  // namespace dmr
