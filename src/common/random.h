#ifndef DMR_COMMON_RANDOM_H_
#define DMR_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dmr {

/// \brief Fast, deterministic 64-bit PRNG (SplitMix64).
///
/// Used everywhere randomness is needed so that simulations are exactly
/// reproducible given a seed. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Returns an exponentially distributed value with the given mean.
  double NextExponential(double mean);

  /// Forks an independent generator; the child stream is decorrelated from
  /// the parent by hashing the parent's next output.
  Rng Fork();

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_;
};

/// \brief Draws ranks from a Zipfian distribution over {1, ..., n}.
///
/// f(k; z, n) = (1/k^z) / sum_{i=1..n} 1/i^z  — the distribution the paper
/// uses to assign matching records to input partitions (Section V-B).
/// z = 0 degenerates to uniform. Sampling is by inverted CDF with binary
/// search over a precomputed table (O(log n) per draw after O(n) setup).
class ZipfGenerator {
 public:
  /// \param n population size (number of ranks); must be >= 1.
  /// \param z skew exponent; z >= 0. z=0 is uniform.
  ZipfGenerator(uint64_t n, double z);

  /// Returns a rank in [1, n].
  uint64_t Next(Rng* rng) const;

  /// Returns the probability mass of rank k (1-based).
  double Pmf(uint64_t k) const;

  uint64_t n() const { return n_; }
  double z() const { return z_; }

 private:
  uint64_t n_;
  double z_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

}  // namespace dmr

#endif  // DMR_COMMON_RANDOM_H_
