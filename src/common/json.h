#ifndef DMR_COMMON_JSON_H_
#define DMR_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace dmr::json {

/// \brief A parsed JSON document node (strict-enough RFC 8259 subset).
///
/// The observability layer emits JSON by string concatenation for speed;
/// this parser exists for the *other* direction — tests and tooling that
/// read trace/metrics output back and assert on its structure. Numbers are
/// held as doubles (adequate for every value the simulator emits).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;  // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience: Find(key) as a number/string with a fallback.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key,
                       const std::string& fallback) const;
};

/// Parses a complete JSON document; trailing garbage is an error.
Result<JsonValue> JsonParse(std::string_view text);

/// Renders `s` as a double-quoted JSON string literal (escapes quotes,
/// backslashes and control characters). Shared by every JSON emitter in
/// the codebase.
std::string JsonQuote(std::string_view s);

}  // namespace dmr::json

#endif  // DMR_COMMON_JSON_H_
