#include "common/time_series.h"

#include <algorithm>
#include <cmath>

namespace dmr {

double TimeSeries::MeanAfter(double from) const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.time >= from) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::Max() const {
  if (points_.empty()) return 0.0;
  double best = points_.front().value;
  for (const auto& p : points_) best = std::max(best, p.value);
  return best;
}

double TimeSeries::Min() const {
  if (points_.empty()) return 0.0;
  double best = points_.front().value;
  for (const auto& p : points_) best = std::min(best, p.value);
  return best;
}

double TimeSeries::Percentile(double q) const {
  if (points_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::vector<double> values;
  values.reserve(points_.size());
  for (const auto& p : points_) values.push_back(p.value);
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(
      std::ceil(q / 100.0 * static_cast<double>(values.size())));
  if (rank > 0) --rank;  // 1-based rank -> index
  return values[rank];
}

}  // namespace dmr
