#include "common/time_series.h"

#include <algorithm>

namespace dmr {

double TimeSeries::MeanAfter(double from) const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.time >= from) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::Max() const {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, p.value);
  return best;
}

}  // namespace dmr
