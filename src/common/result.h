#ifndef DMR_COMMON_RESULT_H_
#define DMR_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dmr {

/// \brief Either a value of type T or an error Status.
///
/// A Result constructed from an OK status is a programming error. Access to
/// the value of an errored Result aborts in debug builds; callers should use
/// ok()/status() or the DMR_ASSIGN_OR_RETURN macro.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT

  /// Constructs from an error status (implicit, enables `return status;`).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(std::move(payload_));
  }

  /// Moves the value out without checking; used by DMR_ASSIGN_OR_RETURN
  /// after an ok() check.
  T&& ValueUnsafe() && { return std::get<T>(std::move(payload_)); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const& { return ok() ? std::get<T>(payload_) : fallback; }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace dmr

#endif  // DMR_COMMON_RESULT_H_
