#ifndef DMR_COMMON_HOST_CLOCK_H_
#define DMR_COMMON_HOST_CLOCK_H_

namespace dmr {

/// \brief The sanctioned seam for host wall-clock reads.
///
/// Simulated time lives in sim::Simulation and is always deterministic; the
/// *host* clock exists only to time real decision code (scheduler inner
/// loops, provider evaluations) for the observability histograms. Reading it
/// anywhere else is a determinism hazard — raw `std::chrono` clock calls are
/// banned by the `wall-clock` dmr-lint check, and every legitimate host
/// timing site must go through this class instead.
///
/// Two modes:
///  * **real** (default): NowMicros() is a monotonic microsecond reading
///    from std::chrono::steady_clock, relative to process start.
///  * **frozen**: NowMicros() always returns 0, so every host-derived
///    duration collapses to 0 and outputs that embed host timings (the
///    `*_us` metrics histograms) become byte-identical across runs. The
///    tier-1 tie-shuffle digest stage runs with the clock frozen.
///
/// The mode is chosen once, from the DMR_HOST_CLOCK environment variable
/// ("frozen" freezes; anything else, or unset, is real) on first use, or
/// programmatically via SetFrozenForTest before any read. Reads are
/// thread-safe; mode selection must happen before threads start timing.
class HostClock {
 public:
  /// True when host-clock reads are frozen at 0.
  static bool frozen();

  /// Microseconds since process start (0.0 when frozen). Monotonic.
  static double NowMicros();

  /// Convenience: NowMicros() - t0 (0.0 when frozen).
  static double ElapsedMicros(double t0) { return NowMicros() - t0; }

  /// Forces the mode, overriding the environment (test hook; call before
  /// any timing starts).
  static void SetFrozenForTest(bool frozen);
};

}  // namespace dmr

#endif  // DMR_COMMON_HOST_CLOCK_H_
