#ifndef DMR_COMMON_STRINGS_H_
#define DMR_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace dmr {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// ASCII lower-cases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII upper-cases a copy of `s`.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Formats a byte count with binary units ("1.5 GB").
std::string FormatBytes(uint64_t bytes);

/// Formats seconds with adaptive precision ("2m 13.5s").
std::string FormatDuration(double seconds);

/// Parses a signed integer; returns false on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

}  // namespace dmr

#endif  // DMR_COMMON_STRINGS_H_
