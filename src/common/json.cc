#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dmr::json {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value : fallback;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    DMR_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    JsonValue value;
    char c = text_[pos_];
    switch (c) {
      case '{': {
        DMR_ASSIGN_OR_RETURN(value, ParseObject());
        break;
      }
      case '[': {
        DMR_ASSIGN_OR_RETURN(value, ParseArray());
        break;
      }
      case '"': {
        value.kind = JsonValue::Kind::kString;
        DMR_ASSIGN_OR_RETURN(value.string_value, ParseString());
        break;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.bool_value = true;
        break;
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.bool_value = false;
        break;
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        value.kind = JsonValue::Kind::kNull;
        break;
      default: {
        DMR_ASSIGN_OR_RETURN(value.number_value, ParseNumber());
        value.kind = JsonValue::Kind::kNumber;
        break;
      }
    }
    --depth_;
    return value;
  }

  Result<JsonValue> ParseObject() {
    JsonValue obj;
    obj.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      DMR_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      DMR_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      obj.members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue arr;
    arr.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      DMR_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      arr.items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode (surrogate pairs are passed through as-is; the
          // emitters only escape control characters, never astral planes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<double> ParseNumber() {
    size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    return value;
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace dmr::json
