#include "common/properties.h"

#include "common/strings.h"

namespace dmr {

void Properties::Set(std::string_view key, std::string_view value) {
  entries_[std::string(key)] = std::string(value);
}

void Properties::SetInt(std::string_view key, int64_t value) {
  Set(key, std::to_string(value));
}

void Properties::SetDouble(std::string_view key, double value) {
  Set(key, std::to_string(value));
}

void Properties::SetBool(std::string_view key, bool value) {
  Set(key, value ? "true" : "false");
}

bool Properties::Contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::string Properties::Get(std::string_view key,
                            std::string_view fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::string(fallback);
  return it->second;
}

Result<int64_t> Properties::GetInt(std::string_view key,
                                   int64_t fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  int64_t v;
  if (!ParseInt64(it->second, &v)) {
    return Status::ParseError("property '" + std::string(key) +
                              "' is not an integer: " + it->second);
  }
  return v;
}

Result<double> Properties::GetDouble(std::string_view key,
                                     double fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  double v;
  if (!ParseDouble(it->second, &v)) {
    return Status::ParseError("property '" + std::string(key) +
                              "' is not a number: " + it->second);
  }
  return v;
}

Result<bool> Properties::GetBool(std::string_view key, bool fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  if (EqualsIgnoreCase(it->second, "true") ||
      EqualsIgnoreCase(it->second, "1") ||
      EqualsIgnoreCase(it->second, "yes")) {
    return true;
  }
  if (EqualsIgnoreCase(it->second, "false") ||
      EqualsIgnoreCase(it->second, "0") ||
      EqualsIgnoreCase(it->second, "no")) {
    return false;
  }
  return Status::ParseError("property '" + std::string(key) +
                            "' is not a boolean: " + it->second);
}

bool Properties::Erase(std::string_view key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

Result<Properties> Properties::Parse(std::string_view text) {
  Properties props;
  size_t line_no = 0;
  for (const auto& raw_line : SplitString(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = TrimWhitespace(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 'key = value', got '" +
                                std::string(line) + "'");
    }
    std::string_view key = TrimWhitespace(line.substr(0, eq));
    std::string_view value = TrimWhitespace(line.substr(eq + 1));
    if (key.empty()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": empty key");
    }
    props.Set(key, value);
  }
  return props;
}

std::string Properties::ToString() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    out += k;
    out += " = ";
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace dmr
