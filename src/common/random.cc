#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dmr {

uint64_t Rng::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

ZipfGenerator::ZipfGenerator(uint64_t n, double z) : n_(n), z_(z) {
  assert(n >= 1);
  assert(z >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), z);
    cdf_[k - 1] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfGenerator::Pmf(uint64_t k) const {
  assert(k >= 1 && k <= n_);
  if (k == 1) return cdf_[0];
  return cdf_[k - 1] - cdf_[k - 2];
}

}  // namespace dmr
